"""Perf-regression harness for the simulation kernel and experiment runner.

Not a pytest module (no ``test_`` prefix): run it directly ::

    PYTHONPATH=src python benchmarks/perf_harness.py            # full run
    PYTHONPATH=src python benchmarks/perf_harness.py --smoke    # CI quick pass

Three measurements, compared against the seed-tree baseline (commit
2988a20, captured with the workloads in this file before the kernel fast
paths landed):

* ``int_yield`` -- pure kernel event throughput: 64 processes each doing
  2000 one-cycle delay yields.  Events/sec uses the nominal event count
  (procs x yields) so the figure is comparable across kernel versions
  that schedule bootstrap/cleanup differently.
* ``mixed`` -- a composite workload exercising Timeout pooling, Event
  succeed/fail, AnyOf/AllOf, and Process.interrupt wakeups.
* ``table2`` -- wall time of the full Table II experiment, sequential and
  through the parallel runner (``--jobs``), best-of-``--rounds`` after a
  warm-up run.  Parallel rows must be bit-identical to sequential rows
  and pass ``check_table2_shape``.

A fourth, untimed section (``run_report``) records the telemetry summary
of one traced Table II case so event counts and utilization drift are
visible next to the perf numbers.

Writes ``BENCH_kernel.json`` (``--out``) with raw numbers, the frozen
seed baseline, and vs-seed speedups.  ``--smoke`` shrinks every workload
and skips absolute-performance gating so CI stays timing-insensitive;
outside smoke mode the run fails (exit 1) if identity/shape checks fail
or a vs-seed speedup regresses below the floors in ``GATES``.
"""

from __future__ import annotations

import argparse
import json
import os
import sys
import time

from repro.experiments.table2 import check_table2_shape, run_table2, run_table2_case
from repro.obs.report import drain_recorded
from repro.sim.kernel import Interrupt, Simulator

# Measured on the seed tree (commit 2988a20) with these same workloads;
# seed processes yield ``sim.timeout(1)`` -- the int fast path is the point.
SEED_BASELINE = {
    "int_yield_events_per_sec": 614367.0,
    "mixed_seconds": 0.0175,
    "table2_sequential_seconds": 10.68,
}

# Minimum acceptable speedups vs the seed baseline (full runs only).
GATES = {
    "int_yield_events_per_sec": 1.20,   # kernel throughput >= +20 %
    "table2_parallel_seconds": 3.0,     # jobs=N table2 >= 3x seed sequential
}


def bench_int_yield(procs: int = 64, yields: int = 2000) -> dict:
    """Kernel event throughput: ``procs`` processes x ``yields`` delays."""

    def worker(count):
        for _ in range(count):
            yield 1

    sim = Simulator()
    for index in range(procs):
        sim.process(worker(yields), name="w%d" % index)
    start = time.perf_counter()
    sim.run()
    seconds = time.perf_counter() - start
    events = procs * yields
    return {
        "procs": procs,
        "yields": yields,
        "seconds": seconds,
        "events": events,
        "events_per_sec": events / seconds,
    }


def bench_mixed(groups: int = 200) -> dict:
    """Composite workload: events, composites, interrupts, pooled timeouts."""

    def producer(sim, done):
        yield 3
        done.succeed("payload")

    def failer(sim, doomed):
        yield 10
        doomed.fail(RuntimeError("mixed-bench failure path"))

    def consumer(sim, done, doomed):
        value = yield sim.any_of([done, sim.timeout(50)])
        assert value
        try:
            yield sim.all_of([doomed, sim.timeout(20)])
        except RuntimeError:
            pass
        for _ in range(20):
            yield 2

    def sleeper(sim):
        try:
            yield 1000
        except Interrupt:
            yield 1

    def interrupter(sim, victim):
        yield 5
        victim.interrupt("wake")
        yield 5

    sim = Simulator()
    for index in range(groups):
        done = sim.event()
        doomed = sim.event()
        sim.process(producer(sim, done), name="p%d" % index)
        sim.process(failer(sim, doomed), name="f%d" % index)
        sim.process(consumer(sim, done, doomed), name="c%d" % index)
        victim = sim.process(sleeper(sim), name="s%d" % index)
        sim.process(interrupter(sim, victim), name="i%d" % index)
    start = time.perf_counter()
    sim.run()
    seconds = time.perf_counter() - start
    return {"groups": groups, "seconds": seconds, "events": sim.events_processed}


def bench_table2(jobs: int, rounds: int, packets: int) -> dict:
    """Table II wall time, sequential vs parallel runner, plus identity."""
    run_table2(packets=packets)  # warm imports and generator caches
    sequential = []
    parallel = []
    rows_seq = rows_par = None
    for _ in range(rounds):
        start = time.perf_counter()
        rows_seq = run_table2(packets=packets, jobs=1)
        sequential.append(time.perf_counter() - start)
        start = time.perf_counter()
        rows_par = run_table2(packets=packets, jobs=jobs)
        parallel.append(time.perf_counter() - start)
    identical = [vars(r) for r in rows_seq] == [vars(r) for r in rows_par]
    # The shape claims are calibrated for the full 8-packet experiment;
    # smoke-scale runs only verify sequential/parallel identity.
    shape_failures = check_table2_shape(rows_par) if packets >= 8 else []
    return {
        "jobs": jobs,
        "rounds": rounds,
        "packets": packets,
        "sequential_seconds": min(sequential),
        "parallel_seconds": min(parallel),
        "sequential_all": sequential,
        "parallel_all": parallel,
        "rows_identical": identical,
        "shape_failures": shape_failures,
    }


def bench_run_report(packets: int) -> dict:
    """One representative traced case: the RunReport summary the paper-table
    runs emit, recorded into BENCH_kernel.json so telemetry drift (event
    counts, utilization) shows up next to the perf numbers."""
    drain_recorded()  # discard anything a previous bench left behind
    row = run_table2_case((7, "SPLITBA", "FPA"), packets=packets, telemetry=True)
    reports = drain_recorded()
    report = reports[0] if reports else {}
    return {
        "case": "table2:7 SPLITBA/FPA",
        "packets": packets,
        "throughput_mbps": row.throughput_mbps,
        "wall_seconds": report.get("wall_seconds", 0.0),
        "simulated_cycles": report.get("simulated_cycles", 0),
        "events_processed": report.get("events_processed", 0),
        "events_per_second": report.get("events_per_second", 0.0),
        "peak_queue_depth": report.get("peak_queue_depth", 0),
        "segments": [
            {
                "name": segment["name"],
                "transactions": segment["transactions"],
                "utilization": segment["utilization"],
                "arb_wait_p99": segment.get("arb_wait_p99"),
            }
            for segment in report.get("segments", ())
        ],
    }


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--rounds", type=int, default=3, help="timing repeats (best-of)")
    parser.add_argument("--jobs", type=int, default=4, help="parallel runner workers")
    parser.add_argument(
        "--smoke",
        action="store_true",
        help="tiny workloads, no perf gating (CI functional check)",
    )
    parser.add_argument(
        "--out",
        default=os.path.join(os.path.dirname(os.path.dirname(os.path.abspath(__file__))), "BENCH_kernel.json"),
        help="output JSON path (default: repo-root BENCH_kernel.json)",
    )
    args = parser.parse_args(argv)

    if args.smoke:
        int_yield = bench_int_yield(procs=8, yields=200)
        mixed = bench_mixed(groups=20)
        table2 = bench_table2(jobs=min(args.jobs, 2), rounds=1, packets=2)
        run_report = bench_run_report(packets=2)
    else:
        int_yield = bench_int_yield()
        mixed = bench_mixed()
        table2 = bench_table2(jobs=args.jobs, rounds=args.rounds, packets=8)
        run_report = bench_run_report(packets=8)

    vs_seed = {
        "int_yield_events_per_sec": int_yield["events_per_sec"]
        / SEED_BASELINE["int_yield_events_per_sec"],
        "mixed_seconds": SEED_BASELINE["mixed_seconds"] / mixed["seconds"],
        "table2_sequential_seconds": SEED_BASELINE["table2_sequential_seconds"]
        / table2["sequential_seconds"],
        "table2_parallel_seconds": SEED_BASELINE["table2_sequential_seconds"]
        / table2["parallel_seconds"],
    }
    report = {
        "smoke": args.smoke,
        "kernel": {"int_yield": int_yield, "mixed": mixed},
        "table2": table2,
        "run_report": run_report,
        "seed_baseline": SEED_BASELINE,
        "vs_seed": vs_seed,
    }

    print("int_yield : %8.0f events/sec (%.2fx seed)"
          % (int_yield["events_per_sec"], vs_seed["int_yield_events_per_sec"]))
    print("mixed     : %8.4f s        (%.2fx seed)"
          % (mixed["seconds"], vs_seed["mixed_seconds"]))
    print("table2    : seq %.2f s (%.2fx seed)  jobs=%d %.2f s (%.2fx seed)"
          % (table2["sequential_seconds"], vs_seed["table2_sequential_seconds"],
             table2["jobs"], table2["parallel_seconds"],
             vs_seed["table2_parallel_seconds"]))
    print("identity  : rows_identical=%s shape_failures=%s"
          % (table2["rows_identical"], table2["shape_failures"]))
    print("telemetry : %s  %d cycles, %d events, peak queue depth %d"
          % (run_report["case"], run_report["simulated_cycles"],
             run_report["events_processed"], run_report["peak_queue_depth"]))

    failures = []
    if not table2["rows_identical"]:
        failures.append("parallel rows differ from sequential rows")
    if table2["shape_failures"]:
        failures.append("check_table2_shape: %s" % table2["shape_failures"])
    if not args.smoke:
        for key, floor in GATES.items():
            if vs_seed[key] < floor:
                failures.append(
                    "vs_seed[%s] = %.2fx below the %.2fx floor" % (key, vs_seed[key], floor)
                )
    report["failures"] = failures

    with open(args.out, "w") as handle:
        json.dump(report, handle, indent=2, sort_keys=True)
        handle.write("\n")
    print("wrote %s" % args.out)
    if failures:
        for failure in failures:
            print("FAIL: %s" % failure)
        return 1
    return 0


if __name__ == "__main__":
    sys.exit(main())
