"""Compatibility shim: the perf harness now lives in ``repro.bench``.

Prefer the CLI verb (discoverable flags, no PYTHONPATH) ::

    python -m repro bench [--smoke] [--kernel heap|wheel] [--enforce-floor]

This file keeps the historical entry point working ::

    python benchmarks/perf_harness.py --smoke

Baselines are the checked-in ``benchmarks/baselines.json``; results go to
``BENCH_kernel.json``.  See ``docs/performance.md`` for how to read both.
"""

import os
import sys

sys.path.insert(
    0, os.path.join(os.path.dirname(os.path.dirname(os.path.abspath(__file__))), "src")
)

from repro.bench.harness import main  # noqa: E402

if __name__ == "__main__":
    sys.exit(main())
