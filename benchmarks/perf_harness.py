"""Compatibility shim: the perf harness now lives in ``repro.bench``.

Prefer the CLI verb (discoverable flags, no PYTHONPATH) ::

    python -m repro bench [--smoke] [--kernel heap|wheel|compiled] [--enforce-floor]

This file keeps the historical entry point working, forwarding every
flag (``--kernel``, ``--jobs``, ``--rounds``, ``--smoke``,
``--enforce-floor``, ``--baselines``, ``--out``) unchanged ::

    python benchmarks/perf_harness.py --smoke --kernel compiled

Baselines are the checked-in ``benchmarks/baselines.json``; results go to
``BENCH_kernel.json``.  See ``docs/performance.md`` for how to read both.
"""

import os
import sys
import warnings

sys.path.insert(
    0, os.path.join(os.path.dirname(os.path.dirname(os.path.abspath(__file__))), "src")
)

from repro.bench.harness import main  # noqa: E402


def _forward(argv=None):
    warnings.warn(
        "benchmarks/perf_harness.py is a compatibility shim; "
        "use `python -m repro bench` (same flags) instead",
        DeprecationWarning,
        stacklevel=2,
    )
    return main(sys.argv[1:] if argv is None else argv)


if __name__ == "__main__":
    sys.exit(_forward())
