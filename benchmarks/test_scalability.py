"""Scalability bench: throughput and area as the PE count grows.

The paper's scalability claim is structural ("by simply repeating generated
BANs, a Bus Subsystem can be a scalable structure", section IV.A) and
Table V shows gate counts to 24 processors.  This bench adds the runtime
side: OFDM-FPA throughput on GBAVIII as PEs grow, against the bus-gate
cost, showing the throughput-per-gate trade the generator lets a designer
explore.
"""

from conftest import print_table

from repro.apps.ofdm import OfdmParameters, run_ofdm
from repro.core.busyn import BusSyn
from repro.options import presets
from repro.sim.fabric import build_machine


def test_throughput_scaling_with_pes(once):
    def run():
        tool = BusSyn()
        params = OfdmParameters(packets=16)
        rows = []
        for pe_count in (2, 4, 8):
            spec = presets.preset("GBAVIII", pe_count)
            gates = tool.generate(spec).report.gate_count
            result = run_ofdm(build_machine(spec), "FPA", params)
            rows.append((pe_count, result.throughput_mbps, gates))
        return rows

    rows = once(run)
    print_table(
        "Scalability -- GBAVIII OFDM-FPA throughput vs bus gates (16 packets)",
        [
            "%2d PEs: %8.4f Mbps  %7d gates  %.4f kbps/gate"
            % (n, mbps, gates, 1000 * mbps / gates)
            for n, mbps, gates in rows
        ],
    )
    throughputs = [mbps for _n, mbps, _g in rows]
    # More PEs decode more packets concurrently; speedup is sublinear
    # (shared-bus contention + distribution serialization) but real.
    assert throughputs[0] < throughputs[1] < throughputs[2]
    assert throughputs[2] > 2.0 * throughputs[0]
