"""Extension benches: GBAVII across all three applications, and DMA.

GBAVII is the architecture the paper names but omits "due to space
constraints" (section IV.B); we generate and evaluate it.  Expected
profile, from its structure (GBAVI's segmented ring + a global memory
reachable over the bridges):

* OFDM PPA: identical to GBAVI (same neighbour channels);
* OFDM FPA: between GGBA and GBAVIII (shared memory exists, but global
  accesses pay bridge hops instead of a single arbitrated bus);
* MPEG2 / database: close behind GBAVIII.

The DMA bench reproduces section IV.C.3's remark that a DMA device "can be
supported in GBAVIII": offloading the raw-data distribution copy overlaps
it with PE compute.
"""

from conftest import print_table

from repro.apps.database import run_database
from repro.apps.mpeg2.codec import synthetic_video
from repro.apps.mpeg2.parallel import run_mpeg2
from repro.apps.ofdm import OfdmParameters, run_ofdm
from repro.options import presets
from repro.sim.dma import DmaEngine
from repro.sim.fabric import build_machine
from repro.soc.api import SocAPI


def test_gbavii_across_applications(once):
    def run():
        rows = {}
        params = OfdmParameters(packets=8)
        for name in ("GBAVI", "GBAVII", "GBAVIII", "GGBA"):
            if name != "GBAVI":
                machine = build_machine(presets.preset(name, 4))
                rows[(name, "ofdm_fpa")] = run_ofdm(machine, "FPA", params).throughput_mbps
            machine = build_machine(presets.preset(name, 4))
            rows[(name, "ofdm_ppa")] = run_ofdm(machine, "PPA", params).throughput_mbps
        video = synthetic_video(16)
        for name in ("GBAVII", "GBAVIII"):
            machine = build_machine(presets.preset(name, 4))
            rows[(name, "mpeg2")] = run_mpeg2(machine, video).throughput_mbps
        for name in ("GBAVII", "GBAVIII", "GGBA"):
            machine = build_machine(presets.preset(name, 4))
            rows[(name, "db")] = run_database(machine).execution_time_ns
        return rows

    rows = once(run)
    print_table(
        "Extension -- GBAVII (the bus the paper omitted) vs its neighbours",
        ["%-8s %-9s %12.4f" % (bus, app, value) for (bus, app), value in sorted(rows.items())],
    )
    # OFDM PPA: GBAVII uses the same neighbour handshake as GBAVI.
    assert abs(rows[("GBAVII", "ofdm_ppa")] - rows[("GBAVI", "ofdm_ppa")]) < 0.02 * rows[
        ("GBAVI", "ofdm_ppa")
    ]
    # OFDM FPA interpolation: GGBA < GBAVII < GBAVIII.
    assert (
        rows[("GGBA", "ofdm_fpa")]
        < rows[("GBAVII", "ofdm_fpa")]
        < rows[("GBAVIII", "ofdm_fpa")]
    )
    # MPEG2: within 5% of GBAVIII (global traffic is small there).
    assert rows[("GBAVII", "mpeg2")] > 0.9 * rows[("GBAVIII", "mpeg2")]
    # Database: slower than GBAVIII, faster than GGBA.
    assert rows[("GBAVIII", "db")] < rows[("GBAVII", "db")] < rows[("GGBA", "db")]


def test_dma_offload(once):
    """DMA distribution copy overlapped with PE compute (section IV.C.3)."""

    def run():
        times = {}
        for use_dma in (False, True):
            machine = build_machine(presets.preset("GBAVIII", 4))
            api = SocAPI(machine, "A")
            machine.memory("GLOBAL_SRAM_G").write(0, [3] * 4096)

            def program():
                if use_dma:
                    dma = DmaEngine(machine)
                    done = dma.copy(("GLOBAL_SRAM_G", 0), ("GLOBAL_SRAM_G", 8192), 4096)
                    yield from api.compute(40_000)
                    yield done
                else:
                    values = yield from api.read(("GLOBAL_SRAM_G", 0), 4096)
                    yield from api.mem_write(values, ("GLOBAL_SRAM_G", 8192))
                    yield from api.compute(40_000)

            machine.pe("A").run(program())
            machine.sim.run()
            times["dma" if use_dma else "pe"] = machine.sim.now
        return times

    times = once(run)
    saving = 1 - times["dma"] / times["pe"]
    print_table(
        "Extension -- DMA-offloaded distribution (4096-word copy + compute)",
        [
            "PE-driven copy: %d cycles" % times["pe"],
            "DMA + overlapped compute: %d cycles" % times["dma"],
            "saving: %.1f%%" % (saving * 100),
        ],
    )
    assert times["dma"] < times["pe"]
    assert saving > 0.2
