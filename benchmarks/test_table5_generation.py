"""Table V: BusSyn generation time and gate count.

Generates every bus architecture at 1/8/16/24 processors, measuring the
generator's wall-clock time and the NAND2 gate estimate of the bus logic.
Checks sub-second generation ("a matter of seconds instead of weeks"),
lint-clean output, near-linear gate scaling and the per-PE cost ordering.
"""

from conftest import print_table

from repro.experiments.table5 import TABLE5_PAPER, check_table5_shape, run_table5


def test_table5_generation_time_and_gates(once):
    rows = once(run_table5)
    print_table(
        "Table V -- generation time [ms] and NAND2 gate count",
        [row.text() for row in rows],
    )
    failures = check_table5_shape(rows)
    assert failures == [], failures

    # Every generated system within a factor of two of the paper's count.
    for row in rows:
        if row.paper_gates:
            ratio = row.gate_count / row.paper_gates
            assert 0.5 <= ratio <= 2.0, (row.bus_system, row.pe_count, ratio)

    # The whole 19-configuration sweep generated in seconds.
    total_ms = sum(row.generation_time_ms for row in rows)
    print("total generation time: %.0f ms for %d bus systems" % (total_ms, len(rows)))
    assert total_ms < 60_000
