"""Ablation benches for the design choices DESIGN.md section 6 calls out.

Each ablation isolates one mechanism behind the paper's results:

1. arbitration grant latency (3 vs 5 cycles -- the CCBA margin);
2. the 2-register handshake vs the conventional 3-register protocol;
3. local memories present vs absent (GBAVIII vs GGBA);
4. split vs single arbiter under the database workload;
5. Bi-FIFO depth sensitivity of the BFBA pipeline;
6. arbiter policy (FCFS / round-robin / priority) under the database load.
"""

import pytest
from conftest import print_table

from repro.apps.database import run_database
from repro.apps.mpeg2.codec import synthetic_video
from repro.apps.mpeg2.parallel import run_mpeg2
from repro.apps.ofdm import OfdmParameters, run_ofdm
from repro.options import presets
from repro.sim.fabric import build_machine
from repro.soc.api import SocAPI
from repro.soc.handshake import GbaviChannel, ThreeRegisterChannel


def test_ablation_grant_latency(once):
    """Sweeping the read-grant latency on GBAVIII's global bus (MPEG2)."""

    def run():
        video = synthetic_video(16)
        rows = []
        for grant in (3, 4, 5, 7):
            spec = presets.gbaviii(4, grant_cycles=grant, name="GBAVIII_G%d" % grant)
            result = run_mpeg2(build_machine(spec), video)
            rows.append((grant, result.throughput_mbps))
        return rows

    rows = once(run)
    print_table(
        "Ablation 1 -- read-grant latency on the global bus (MPEG2)",
        ["grant=%d cycles: %.4f Mbps" % row for row in rows],
    )
    throughputs = [mbps for _grant, mbps in rows]
    assert all(a >= b for a, b in zip(throughputs, throughputs[1:]))
    # The 3-vs-5 delta is the mechanism behind Table III's CCBA deficit.
    assert rows[0][1] > rows[2][1]


def test_ablation_handshake_registers(once):
    """2-register protocol (the paper's) vs the typical 3-register one."""

    def run():
        results = {}
        for label, channel_cls in (("2-reg", GbaviChannel), ("3-reg", ThreeRegisterChannel)):
            machine = build_machine(presets.preset("GBAVI", 4))
            channel = channel_cls(SocAPI(machine, "A"), SocAPI(machine, "B"), 64)
            payload = list(range(64))

            def sender():
                for _ in range(50):
                    yield from channel.send(payload)

            def receiver():
                for _ in range(50):
                    yield from channel.recv()
                    yield from channel.release()

            machine.pe("A").run(sender())
            machine.pe("B").run(receiver())
            machine.sim.run()
            results[label] = machine.sim.now
        return results

    results = once(run)
    overhead = results["3-reg"] / results["2-reg"] - 1
    print_table(
        "Ablation 2 -- handshake protocol (50 x 64-word transfers, GBAVI)",
        [
            "2-register (paper): %d cycles" % results["2-reg"],
            "3-register (typical): %d cycles" % results["3-reg"],
            "read-request register costs +%.1f%%" % (overhead * 100),
        ],
    )
    assert results["3-reg"] > results["2-reg"]


def test_ablation_local_memories(once):
    """Observation (B): local program/data memories vs everything shared."""

    def run():
        params = OfdmParameters(packets=8)
        with_local = run_ofdm(build_machine(presets.preset("GBAVIII", 4)), "FPA", params)
        without = run_ofdm(build_machine(presets.preset("GGBA", 4)), "FPA", params)
        return with_local.throughput_mbps, without.throughput_mbps

    with_local, without = once(run)
    print_table(
        "Ablation 3 -- local memories (OFDM FPA)",
        [
            "GBAVIII (local program/data): %.4f Mbps" % with_local,
            "GGBA (everything shared):     %.4f Mbps" % without,
        ],
    )
    assert with_local > without


def test_ablation_split_arbiter(once):
    """Observation (C): each SplitBA arbiter handles half the requests."""

    def run():
        results = {}
        for name in ("GGBA", "SPLITBA"):
            machine = build_machine(presets.preset(name, 4))
            result = run_database(machine)
            waits = [
                segment.stats.mean_arbitration_wait()
                for segment in machine.segments.values()
            ]
            results[name] = (result.execution_time_ns, max(waits))
        return results

    results = once(run)
    print_table(
        "Ablation 4 -- split vs single arbiter (database)",
        [
            "%-8s %10.0f ns  worst mean arbitration wait %.1f cycles"
            % (name, time_ns, wait)
            for name, (time_ns, wait) in results.items()
        ],
    )
    assert results["SPLITBA"][0] < results["GGBA"][0]
    assert results["SPLITBA"][1] < results["GGBA"][1]


def test_ablation_fifo_depth(once):
    """Bi-FIFO depth sweep: deeper FIFOs amortize handshakes (BFBA PPA)."""

    def run():
        rows = []
        for depth in (64, 256, 1024, 4096):
            machine = build_machine(presets.preset("BFBA", 4, fifo_depth=depth))
            result = run_ofdm(machine, "PPA", OfdmParameters(packets=4))
            rows.append((depth, result.throughput_mbps))
        return rows

    rows = once(run)
    print_table(
        "Ablation 5 -- Bi-FIFO depth (OFDM PPA on BFBA)",
        ["depth=%4d words: %.4f Mbps" % row for row in rows],
    )
    # Deeper FIFOs never hurt, and the shallowest is measurably worst.
    throughputs = [mbps for _depth, mbps in rows]
    assert throughputs[-1] >= throughputs[0]
    assert max(throughputs) > 1.005 * throughputs[0]


def test_ablation_arbiter_policy(once):
    """Component (F)'s policy variants under the database workload."""

    def run():
        rows = []
        for policy in ("fcfs", "round_robin", "priority"):
            machine = build_machine(presets.preset("GGBA", 4), arbiter_policy=policy)
            result = run_database(machine, client_count=20)
            rows.append((policy, result.execution_time_ns, result.tasks_completed))
        return rows

    rows = once(run)
    print_table(
        "Ablation 6 -- arbiter policy (database, 20 clients)",
        ["%-12s %10.0f ns  tasks=%d" % row for row in rows],
    )
    for _policy, _time_ns, tasks in rows:
        assert tasks == 21  # fairness: every task finishes under any policy
    times = [time_ns for _p, time_ns, _t in rows]
    assert max(times) < 1.5 * min(times)  # policies shuffle, not wreck
