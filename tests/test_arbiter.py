"""Tests for bus arbiters (FCFS, round-robin, priority)."""

import pytest

from repro.sim.arbiter import (
    ARBITER_POLICIES,
    FCFSArbiter,
    PriorityArbiter,
    RoundRobinArbiter,
    make_arbiter,
)
from repro.sim.kernel import Simulator


@pytest.fixture
def sim():
    return Simulator()


def drive(sim, arbiter, master, request_at, hold):
    """Request at a time, hold for ``hold`` cycles, record the grant time."""
    grants = []

    def body():
        yield sim.timeout(request_at)
        yield arbiter.request(master)
        grants.append((master, sim.now))
        yield sim.timeout(hold)
        arbiter.release(master)

    sim.process(body())
    return grants


class TestFCFS:
    def test_uncontended_grant_is_immediate(self, sim):
        arbiter = FCFSArbiter(sim)
        grants = drive(sim, arbiter, "m0", 0, 5)
        sim.run()
        assert grants == [("m0", 0)]

    def test_first_come_first_served(self, sim):
        arbiter = FCFSArbiter(sim)
        g1 = drive(sim, arbiter, "m1", 2, 10)
        g2 = drive(sim, arbiter, "m2", 1, 10)
        g3 = drive(sim, arbiter, "m3", 3, 10)
        sim.run()
        # m2 requested first, then m1, then m3.
        assert g2 == [("m2", 1)]
        assert g1 == [("m1", 11)]
        assert g3 == [("m3", 21)]

    def test_release_by_non_owner_fails_process(self, sim):
        arbiter = FCFSArbiter(sim)

        def body():
            yield arbiter.request("m0")
            arbiter.release("other")

        process = sim.process(body())
        sim.run()
        with pytest.raises(RuntimeError):
            process.value

    def test_stats(self, sim):
        arbiter = FCFSArbiter(sim)
        drive(sim, arbiter, "a", 0, 4)
        drive(sim, arbiter, "b", 0, 4)
        sim.run()
        assert arbiter.grants == 2
        assert arbiter.busy_cycles == 8
        assert arbiter.wait_cycles == 4  # b waited for a's hold


class TestRoundRobin:
    def test_rotates_among_masters(self, sim):
        arbiter = RoundRobinArbiter(sim)
        order = []

        def master(name):
            def body():
                for _ in range(2):
                    yield arbiter.request(name)
                    order.append(name)
                    yield sim.timeout(2)
                    arbiter.release(name)
            return body

        for name in ("a", "b", "c"):
            sim.process(master(name)())
        sim.run()
        # Each round serves every master once before repeating.
        assert sorted(order[:3]) == ["a", "b", "c"]
        assert sorted(order[3:]) == ["a", "b", "c"]

    def test_single_master(self, sim):
        arbiter = RoundRobinArbiter(sim)
        grants = drive(sim, arbiter, "solo", 0, 3)
        sim.run()
        assert grants == [("solo", 0)]


class TestPriority:
    def test_lower_number_wins(self, sim):
        arbiter = PriorityArbiter(sim, priorities={"high": 1, "low": 9})
        order = []

        def holder():
            yield arbiter.request("holder")
            yield sim.timeout(5)
            arbiter.release("holder")

        def contender(name, delay):
            def body():
                yield sim.timeout(delay)
                yield arbiter.request(name)
                order.append(name)
                yield sim.timeout(1)
                arbiter.release(name)
            return body

        sim.process(holder())
        sim.process(contender("low", 1)())
        sim.process(contender("high", 2)())  # requests later but wins
        sim.run()
        assert order == ["high", "low"]

    def test_default_priority_fcfs_within_level(self, sim):
        arbiter = PriorityArbiter(sim)
        g1 = drive(sim, arbiter, "x", 1, 3)
        g2 = drive(sim, arbiter, "y", 0, 3)
        sim.run()
        assert g2[0][1] < g1[0][1]


class TestFactory:
    @pytest.mark.parametrize("policy", sorted(ARBITER_POLICIES))
    def test_make_arbiter(self, sim, policy):
        arbiter = make_arbiter(sim, policy)
        assert arbiter.policy_name == policy

    def test_unknown_policy_raises(self, sim):
        with pytest.raises(ValueError):
            make_arbiter(sim, "lottery")

    def test_priority_map_passthrough(self, sim):
        arbiter = make_arbiter(sim, "priority", priorities={"a": 0})
        assert arbiter.priority_of("a") == 0
        assert arbiter.priority_of("unknown") == arbiter.default_priority
