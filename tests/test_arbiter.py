"""Tests for bus arbiters (FCFS, round-robin, priority)."""

import pytest

from repro.sim.arbiter import (
    ARBITER_POLICIES,
    FCFSArbiter,
    PriorityArbiter,
    RoundRobinArbiter,
    make_arbiter,
)
from repro.sim.kernel import Simulator


@pytest.fixture
def sim():
    return Simulator()


def drive(sim, arbiter, master, request_at, hold):
    """Request at a time, hold for ``hold`` cycles, record the grant time."""
    grants = []

    def body():
        yield sim.timeout(request_at)
        yield arbiter.request(master)
        grants.append((master, sim.now))
        yield sim.timeout(hold)
        arbiter.release(master)

    sim.process(body())
    return grants


class TestFCFS:
    def test_uncontended_grant_is_immediate(self, sim):
        arbiter = FCFSArbiter(sim)
        grants = drive(sim, arbiter, "m0", 0, 5)
        sim.run()
        assert grants == [("m0", 0)]

    def test_first_come_first_served(self, sim):
        arbiter = FCFSArbiter(sim)
        g1 = drive(sim, arbiter, "m1", 2, 10)
        g2 = drive(sim, arbiter, "m2", 1, 10)
        g3 = drive(sim, arbiter, "m3", 3, 10)
        sim.run()
        # m2 requested first, then m1, then m3.
        assert g2 == [("m2", 1)]
        assert g1 == [("m1", 11)]
        assert g3 == [("m3", 21)]

    def test_release_by_non_owner_fails_process(self, sim):
        arbiter = FCFSArbiter(sim)

        def body():
            yield arbiter.request("m0")
            arbiter.release("other")

        process = sim.process(body())
        sim.run()
        with pytest.raises(RuntimeError):
            process.value

    def test_stats(self, sim):
        arbiter = FCFSArbiter(sim)
        drive(sim, arbiter, "a", 0, 4)
        drive(sim, arbiter, "b", 0, 4)
        sim.run()
        assert arbiter.grants == 2
        assert arbiter.busy_cycles == 8
        assert arbiter.wait_cycles == 4  # b waited for a's hold


class TestRoundRobin:
    def test_rotates_among_masters(self, sim):
        arbiter = RoundRobinArbiter(sim)
        order = []

        def master(name):
            def body():
                for _ in range(2):
                    yield arbiter.request(name)
                    order.append(name)
                    yield sim.timeout(2)
                    arbiter.release(name)
            return body

        for name in ("a", "b", "c"):
            sim.process(master(name)())
        sim.run()
        # Each round serves every master once before repeating.
        assert sorted(order[:3]) == ["a", "b", "c"]
        assert sorted(order[3:]) == ["a", "b", "c"]

    def test_single_master(self, sim):
        arbiter = RoundRobinArbiter(sim)
        grants = drive(sim, arbiter, "solo", 0, 3)
        sim.run()
        assert grants == [("solo", 0)]


class TestPriority:
    def test_lower_number_wins(self, sim):
        arbiter = PriorityArbiter(sim, priorities={"high": 1, "low": 9})
        order = []

        def holder():
            yield arbiter.request("holder")
            yield sim.timeout(5)
            arbiter.release("holder")

        def contender(name, delay):
            def body():
                yield sim.timeout(delay)
                yield arbiter.request(name)
                order.append(name)
                yield sim.timeout(1)
                arbiter.release(name)
            return body

        sim.process(holder())
        sim.process(contender("low", 1)())
        sim.process(contender("high", 2)())  # requests later but wins
        sim.run()
        assert order == ["high", "low"]

    def test_default_priority_fcfs_within_level(self, sim):
        arbiter = PriorityArbiter(sim)
        g1 = drive(sim, arbiter, "x", 1, 3)
        g2 = drive(sim, arbiter, "y", 0, 3)
        sim.run()
        assert g2[0][1] < g1[0][1]


class TestFactory:
    @pytest.mark.parametrize("policy", sorted(ARBITER_POLICIES))
    def test_make_arbiter(self, sim, policy):
        arbiter = make_arbiter(sim, policy)
        assert arbiter.policy_name == policy

    def test_unknown_policy_raises(self, sim):
        with pytest.raises(ValueError):
            make_arbiter(sim, "lottery")

    def test_priority_map_passthrough(self, sim):
        arbiter = make_arbiter(sim, "priority", priorities={"a": 0})
        assert arbiter.priority_of("a") == 0
        assert arbiter.priority_of("unknown") == arbiter.default_priority


class TestTryClaim:
    """try_claim: the synchronous idle-arbiter fast path of request()."""

    def test_idle_claim_succeeds(self, sim):
        arbiter = FCFSArbiter(sim)
        assert arbiter.try_claim("m0") is True
        assert arbiter.owner == "m0"
        assert arbiter.grants == 1
        arbiter.release("m0")
        assert arbiter.owner is None

    def test_busy_claim_fails_without_side_effects(self, sim):
        arbiter = FCFSArbiter(sim)
        assert arbiter.try_claim("m0")
        grants_before = arbiter.grants
        assert arbiter.try_claim("m1") is False
        assert arbiter.owner == "m0"
        assert arbiter.grants == grants_before
        assert arbiter.pending_count == 0

    def test_claim_defers_to_pending_requests(self, sim):
        # A queued (not yet granted) request also blocks try_claim: the
        # fast path must never jump the queue.
        arbiter = FCFSArbiter(sim)
        arbiter.try_claim("m0")
        arbiter.request("m1")  # queued behind m0
        assert arbiter.try_claim("m2") is False
        arbiter.release("m0")  # grants m1 via _dispatch
        assert arbiter.owner == "m1"
        assert arbiter.try_claim("m2") is False

    def test_round_robin_claim_rotates_like_request(self):
        # The initial grab via try_claim must leave the ring in the same
        # state as an immediate request() grant: identical grant order in
        # the contention that follows.
        def scenario(use_claim):
            sim = Simulator()
            arbiter = RoundRobinArbiter(sim)
            if use_claim:
                assert arbiter.try_claim("a")
            else:
                assert arbiter.request("a").triggered
            order = []

            def contender(name):
                def body():
                    yield sim.timeout(1)
                    yield arbiter.request(name)
                    order.append((name, sim.now))
                    yield sim.timeout(2)
                    arbiter.release(name)
                return body

            for name in ("a", "b", "c"):
                sim.process(contender(name)())

            def opener():
                yield sim.timeout(2)
                arbiter.release("a")

            sim.process(opener())
            sim.run()
            return order, list(arbiter._order)

        assert scenario(True) == scenario(False)

    def test_claim_equivalent_to_immediate_request_grant(self, sim):
        # Same observable arbiter state either way.
        via_request = FCFSArbiter(sim, "via_request")
        event = via_request.request("m0")
        assert event.triggered
        via_claim = FCFSArbiter(sim, "via_claim")
        assert via_claim.try_claim("m0")
        for field in ("owner", "grants", "busy_since", "pending_count"):
            assert getattr(via_claim, field) == getattr(via_request, field)
