"""Smoke tests for the experiment drivers (small configurations).

The full paper-scale runs live in benchmarks/; these tests exercise the
same code paths at reduced size so the unit suite stays fast, plus the
figure reproductions at full fidelity (they are cheap).
"""

import pytest

from repro.apps.ofdm import OfdmParameters
from repro.experiments import figures, table2, table3, table4, table5


class TestTable2Driver:
    def test_small_run_produces_rows(self):
        rows = table2.run_table2(
            packets=2,
            cases=[(3, "GBAVIII", "FPA"), (4, "GBAVIII", "PPA")],
        )
        assert len(rows) == 2
        by_style = {row.style: row for row in rows}
        assert by_style["FPA"].throughput_mbps > by_style["PPA"].throughput_mbps
        assert all(row.paper_mbps > 0 for row in rows)

    def test_row_text(self):
        rows = table2.run_table2(packets=2, cases=[(3, "GBAVIII", "FPA")])
        assert "GBAVIII" in rows[0].text()


class TestTable3Driver:
    def test_small_run_verifies_frames(self):
        rows = table3.run_table3(frame_count=8, cases=["GBAVIII", "HYBRID"])
        assert all(row.frames_correct for row in rows)
        assert all(row.throughput_mbps > 0 for row in rows)


class TestTable4Driver:
    def test_small_run(self):
        rows = table4.run_table4(client_count=8)
        assert [row.bus_system for row in rows] == ["GGBA", "SPLITBA"]
        assert all(row.tasks_completed == 9 for row in rows)


class TestTable5Driver:
    def test_small_sweep_shape(self):
        rows = table5.run_table5(pe_counts=[2, 4])
        failures = []
        for row in rows:
            assert row.lint_errors == 0, row.bus_system
            assert row.generation_time_ms < 10_000
        buses = {row.bus_system for row in rows}
        assert buses == set(table5.TABLE5_BUSES)

    def test_full_shape_check_on_small_counts(self):
        rows = table5.run_table5(pe_counts=[8, 16])
        assert table5.check_table5_shape(rows) == []


class TestFigures:
    @pytest.mark.parametrize(
        "protocol,expected",
        [
            ("GBAVI", figures.FIGURE11_ORDER),
            ("BFBA", figures.FIGURE12_ORDER),
            ("GBAVIII", figures.FIGURE13_ORDER),
        ],
    )
    def test_handshake_step_orders(self, protocol, expected):
        trace = figures.run_handshake_trace(protocol)
        assert figures.check_step_order(trace, expected) == []

    def test_figure26_schedules(self):
        schedules = figures.run_figure26(packets=2)
        assert figures.check_figure26(schedules) == []

    def test_figure27_assignment(self):
        assignment = figures.run_figure27()
        assert figures.check_figure27(assignment) == []
        assert assignment[0] == "A" and assignment[7] == "D"

    def test_step_order_checker_catches_disorder(self):
        trace = [("b", 1), ("a", 2)]
        assert figures.check_step_order(trace, ["a", "b"]) != []
