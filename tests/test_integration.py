"""Cross-cutting integration tests: generator <-> simulator consistency,
random-spec fuzzing, and end-to-end flows."""

import numpy as np
import pytest
from hypothesis import HealthCheck, given, settings, strategies as st

from repro import BusSyn, build_machine, presets
from repro.apps.ofdm import OfdmParameters, run_ofdm
from repro.hdl import elaborate, lint_design, parse_design
from repro.options.inputfile import parse_option_text, render_option_text
from repro.options.schema import (
    BANSpec,
    BusSpec,
    BusSubsystemSpec,
    BusSystemSpec,
    MemorySpec,
)

ALL_PRESETS = ["BFBA", "GBAVI", "GBAVII", "GBAVIII", "HYBRID", "SPLITBA", "GGBA", "CCBA"]


class TestGeneratorSimulatorConsistency:
    """The Verilog and the machine come from one spec; their shapes agree."""

    @pytest.mark.parametrize("preset_name", ALL_PRESETS)
    def test_pe_instances_match_machine(self, preset_name):
        spec = presets.preset(preset_name, 4)
        generated = BusSyn().generate(spec)
        machine = build_machine(spec)
        counts = elaborate(generated.design())
        cpu_instances = sum(
            count for name, count in counts.items() if name in ("mpc755", "arm9tdmi")
        )
        assert cpu_instances == len(machine.pes) == 4

    @pytest.mark.parametrize("preset_name", ["BFBA", "HYBRID"])
    def test_fifo_blocks_match(self, preset_name):
        spec = presets.preset(preset_name, 4)
        counts = elaborate(BusSyn().generate(spec).design())
        machine = build_machine(spec)
        fifo_instances = sum(
            count for name, count in counts.items() if name.startswith("bififo")
        )
        assert fifo_instances == len(machine.fifo_blocks)

    @pytest.mark.parametrize("preset_name", ["GBAVIII", "GGBA", "CCBA"])
    def test_arbiter_master_count_matches(self, preset_name):
        spec = presets.preset(preset_name, 4)
        generated = BusSyn().generate(spec)
        arbiter_modules = [
            name for name in generated.design().modules if name.startswith("arbiter_")
        ]
        assert arbiter_modules == ["arbiter_fcfs_n4"]

    def test_grant_cycles_agree(self):
        spec = presets.preset("CCBA", 4)
        generated = BusSyn().generate(spec)
        machine = build_machine(spec)
        assert "abi_n4_g5" in generated.design().modules
        assert machine.segments["PLB_SUB1"].grant_cycles == 5


class TestEndToEnd:
    def test_quickstart_flow(self):
        spec = presets.preset("GBAVIII", 4)
        generated = BusSyn().generate(spec)
        assert generated.lint_errors() == []
        machine = generated.build_machine()
        result = run_ofdm(
            machine, "FPA", OfdmParameters(data_samples=256, guard_samples=64, packets=2)
        )
        assert result.throughput_mbps > 0

    def test_option_file_to_verilog_to_machine(self):
        text = render_option_text(presets.preset("HYBRID", 4))
        spec = parse_option_text(text, name="HYBRID")
        generated = BusSyn().generate(spec)
        assert generated.lint_errors() == []
        machine = build_machine(spec)
        assert machine.fifo_blocks and machine.global_memory


def _random_spec(draw) -> BusSystemSpec:
    bus_type = draw(st.sampled_from(
        ["BFBA", "GBAVI", "GBAVII", "GBAVIII", "SPLITBA", "GGBA", "CCBA"]
    ))
    pe_count = draw(st.integers(min_value=1, max_value=6))
    cpu = draw(st.sampled_from(["MPC750", "MPC755", "MPC7410", "ARM9TDMI"]))
    mem_aw = draw(st.sampled_from([16, 18, 20]))
    fifo_depth = draw(st.sampled_from([64, 256, 1024]))
    if bus_type == "SPLITBA" and pe_count < 2:
        pe_count = 2
    kwargs = {"cpu_type": cpu}
    if bus_type == "BFBA":
        kwargs["fifo_depth"] = fifo_depth
    if bus_type not in ("GGBA",):
        kwargs["mem_address_width"] = mem_aw
    return presets.preset(bus_type, pe_count, **kwargs)


@st.composite
def random_specs(draw):
    return _random_spec(draw)


class TestFuzzing:
    @given(random_specs())
    @settings(
        max_examples=25,
        deadline=None,
        suppress_health_check=[HealthCheck.too_slow],
    )
    def test_any_preset_shape_generates_lint_clean(self, spec):
        """Property: every legal spec yields parseable, lint-clean Verilog
        whose text round-trips through the parser."""
        generated = BusSyn().generate(spec)
        assert generated.lint_errors() == []
        reparsed = parse_design(generated.verilog(), top=generated.top_name)
        assert sorted(reparsed.modules) == sorted(generated.design().modules)
        errors = [m for m in lint_design(reparsed) if m.severity == "error"]
        assert errors == []

    @given(random_specs())
    @settings(
        max_examples=15,
        deadline=None,
        suppress_health_check=[HealthCheck.too_slow],
    )
    def test_any_preset_shape_builds_a_machine(self, spec):
        """Property: the simulation twin builds and its PEs can touch their
        program memories."""
        machine = build_machine(spec)
        assert len(machine.pes) == spec.pe_count
        for pe in machine.pes.values():
            memory = machine.memory(pe.program_device)
            assert memory.size_words >= pe.code_footprint_words

    @given(random_specs())
    @settings(
        max_examples=15,
        deadline=None,
        suppress_health_check=[HealthCheck.too_slow],
    )
    def test_option_text_round_trip_property(self, spec):
        text = render_option_text(spec)
        again = parse_option_text(text, name=spec.name)
        assert again.pe_count == spec.pe_count
        assert render_option_text(again) == text
