"""Counter plane: zero-despecialization counters for the fabric hot path.

Pins the contracts documented in ``repro.obs.counters``:

* attaching a :class:`CounterPlane` never changes a run's cycle count, on
  any backend -- and on the compiled backend never despecializes;
* per-segment totals agree with :class:`BusStats` (transactions,
  arbitration-wait cycles) and, fault-free, with the arbiters' grant
  counts, identically on heap, wheel and compiled;
* the plane survives the hook life cycle: attach to a live specialized
  machine, keep accumulating across a later despecialization;
* the specializer's ``?C`` template lines are rendered only when a plane
  is bound, with the slot indices baked as literals.
"""

import re

import pytest

from repro.apps.ofdm import OfdmParameters, run_ofdm
from repro.obs import COUNTER_KINDS, CounterPlane, Observability
from repro.options import presets
from repro.sim.compiled.specializer import specialized_fabric_source
from repro.sim.fabric import MachineBuilder, build_machine

KERNEL_BACKENDS = ("heap", "wheel", "compiled")

# (preset, style): BFBA/GBAVI have no shared memory, so FPA is undefined
# for them -- same mapping as Table II.
PRESET_STYLES = [
    ("BFBA", "PPA"),
    ("GBAVI", "PPA"),
    ("GBAVIII", "FPA"),
    ("HYBRID", "FPA"),
    ("SPLITBA", "FPA"),
    ("GGBA", "FPA"),
    ("CCBA", "FPA"),
]


def counted_run(arch, style, backend, packets=2, pes=4):
    machine = (
        MachineBuilder(presets.preset(arch, pes))
        .with_kernel(backend)
        .with_counters()
        .build()
    )
    result = run_ofdm(machine, style, OfdmParameters(packets=packets))
    return machine, machine.counters, result


class TestCounterPlane:
    def test_unbound_plane_is_empty(self):
        plane = CounterPlane()
        assert not plane.bound
        assert plane.slots == []
        assert plane.totals() == {}

    def test_bind_allocates_three_slots_per_segment(self):
        machine = build_machine(presets.preset("GBAVIII", 4))
        plane = machine.attach_counters()
        assert plane.bound
        assert len(plane.slots) == len(COUNTER_KINDS) * len(machine.segments)
        assert plane.segment_order == sorted(machine.segments)
        for name, segment in machine.segments.items():
            assert segment.counters is plane.slots
            assert segment.counter_base == plane.base_of(name)

    def test_rebind_same_machine_is_noop(self):
        machine = build_machine(presets.preset("GBAVIII", 4))
        plane = machine.attach_counters()
        slots = plane.slots
        plane.bind(machine)
        assert plane.slots is slots

    def test_rebind_other_machine_rejected(self):
        plane = CounterPlane()
        plane.bind(build_machine(presets.preset("GBAVIII", 4)))
        with pytest.raises(ValueError, match="already bound"):
            plane.bind(build_machine(presets.preset("HYBRID", 4)))

    def test_as_dict_shape(self):
        machine, plane, _result = counted_run("GBAVIII", "FPA", "heap")
        snapshot = plane.as_dict()
        assert snapshot["kinds"] == list(COUNTER_KINDS)
        assert sorted(snapshot["segments"]) == plane.segment_order
        for kinds in snapshot["segments"].values():
            assert all(value >= 0 for value in kinds.values())


class TestCountersMatchStats:
    @pytest.mark.parametrize("arch,style", PRESET_STYLES)
    @pytest.mark.parametrize("backend", KERNEL_BACKENDS)
    def test_totals_match_busstats_and_arbiter(self, arch, style, backend):
        machine, plane, _result = counted_run(arch, style, backend)
        assert plane.check_against_stats(machine) == []
        for name in plane.segment_order:
            segment = machine.segments[name]
            assert plane.value(name, "transactions") == segment.stats.transactions
            assert plane.value(name, "wait_cycles") == segment.stats.arbitration_cycles
            # Fault-free: one retired tenure per arbiter grant.
            assert plane.value(name, "grants") == segment.arbiter.grants
        assert any(
            plane.value(name, "transactions") > 0 for name in plane.segment_order
        )

    @pytest.mark.parametrize("arch,style", PRESET_STYLES)
    def test_three_way_backend_parity(self, arch, style):
        reference = None
        for backend in KERNEL_BACKENDS:
            _machine, plane, result = counted_run(arch, style, backend)
            snapshot = (result.cycles, plane.totals())
            if reference is None:
                reference = snapshot
            else:
                assert snapshot == reference, backend


class TestZeroDespecialization:
    def test_compiled_stays_specialized_with_counters(self):
        machine, _plane, _result = counted_run("GBAVIII", "FPA", "compiled")
        assert machine._specialized

    @pytest.mark.parametrize("backend", KERNEL_BACKENDS)
    def test_counters_do_not_change_cycles(self, backend):
        bare = build_machine(presets.preset("GBAVIII", 4), kernel=backend)
        plain = run_ofdm(bare, "FPA", OfdmParameters(packets=2))
        _machine, _plane, counted = counted_run("GBAVIII", "FPA", backend)
        assert counted.cycles == plain.cycles

    def test_attach_to_live_specialized_machine(self):
        machine = build_machine(presets.preset("GBAVIII", 4), kernel="compiled")
        assert machine._specialized
        plane = machine.attach_counters()
        assert machine._specialized
        run_ofdm(machine, "FPA", OfdmParameters(packets=1))
        assert plane.check_against_stats(machine) == []

    def test_counters_survive_despecializing_hook(self):
        machine = build_machine(presets.preset("GBAVIII", 4), kernel="compiled")
        plane = machine.attach_counters()
        run_ofdm(machine, "FPA", OfdmParameters(packets=1))
        first = sum(plane.slots)
        assert first > 0
        # Observability needs the generic instrumented paths, so this
        # despecializes -- the plane must keep accumulating regardless.
        machine.attach_observability(Observability())
        assert not machine._specialized
        run_ofdm(machine, "FPA", OfdmParameters(packets=1))
        assert sum(plane.slots) > first
        assert plane.check_against_stats(machine) == []


class TestSpecializerRendering:
    def test_counter_lines_rendered_only_when_bound(self):
        machine = build_machine(presets.preset("GBAVIII", 4), kernel="compiled")
        bare, _pairs = specialized_fabric_source(machine)
        assert "cslots[" not in bare
        assert "?C" not in bare
        plane = machine.attach_counters()
        counted, pairs = specialized_fabric_source(machine)
        assert "?C" not in counted
        assert "cslots[" in counted
        # Slot indices are baked literals: each specialized pair's segment
        # gets its own transaction/grant/wait triple.
        rendered = {
            int(index)
            for index in re.findall(r"cslots\[(\d+)\]", counted)
        }
        segment_bases = {plane.base_of(name) for name in plane.segment_order}
        assert rendered
        assert all(index < len(plane.slots) for index in rendered)
        bases_rendered = {index - index % len(COUNTER_KINDS) for index in rendered}
        assert bases_rendered <= segment_bases
        for base in bases_rendered:
            assert "cslots[%d] += 1" % base in counted
            assert "cslots[%d] += 1" % (base + 1) in counted
