"""DSE engine: spec expansion, artifact cache, sharded determinism, Pareto.

Pins the production-sweep contracts of ``repro.dse`` (docs/dse.md):

* **expansion** -- a declarative spec expands into a deduplicated,
  deterministically ordered queue; illegal combinations are skipped with
  counted reasons, inapplicable axes normalize away before hashing;
* **cache** -- the on-disk content-addressed store round-trips JSON and
  pickled artifacts, treats corruption and stale versions as misses, and
  backs the BusSyn generation memo across tool instances and processes;
* **determinism** -- the same spec yields a bit-identical frontier cold
  vs warm, at any ``--jobs`` value, and on every scheduler backend;
* **gates** -- the bench ``dse_sweep`` section regression-gates warm
  speedup, warm hit ratio, and frontier identity via ``repro report``.
"""

import json
import os

import pytest

from repro.core.busyn import BusSyn
from repro.dse.cache import ARTIFACT_VERSION, ArtifactCache
from repro.dse.engine import (
    busyn_store_probe,
    run_sweep,
    shard_of,
    sweep_fingerprint,
)
from repro.dse.pareto import axes_for, dominates, pareto_frontier, rank_rows
from repro.dse.spec import (
    DseConfig,
    SweepSpec,
    build_config_spec,
    example_spec,
    smoke_spec,
)
from repro.experiments.runner import run_cases
from repro.obs.ledger import build_record, scrub_timings
from repro.obs.query import check_regressions
from repro.options import presets
from repro.options.schema import OptionError


def tiny_spec():
    """Four fast configs -- enough to exercise sharding and caching."""
    return SweepSpec.from_dict(
        {
            "name": "tiny",
            "axes": {
                "bus": ["GBAVIII", "GGBA"],
                "pes": [2, 4],
                "style": ["FPA"],
                "packets": [1],
            },
        }
    )


class TestSpecExpansion:
    def test_smoke_spec_counts(self):
        configs, skipped, duplicates = smoke_spec().expand()
        assert len(configs) == 10
        assert duplicates == 0
        # 4 buses x 2 pes x 2 styles: PPA away from 4 PEs and FPA on the
        # memory-less BFBA are holes, not errors.
        assert skipped == {"ppa-needs-4-pes": 4, "fpa-needs-shared-memory": 2}

    def test_example_spec_is_the_nine_cases(self):
        configs, skipped, duplicates = example_spec().expand()
        assert len(configs) == 9
        assert skipped == {}
        assert duplicates == 0

    def test_inapplicable_axes_normalize_and_dedup(self):
        # GBAVIII has no Bi-FIFOs: every fifo_depth value collapses to None,
        # so the product dedups down to one config.
        spec = SweepSpec.from_dict(
            {
                "axes": {
                    "bus": ["GBAVIII"],
                    "fifo_depth": [256, 512, 1024],
                    "packets": [1],
                }
            }
        )
        configs, _skipped, duplicates = spec.expand()
        assert len(configs) == 1
        assert duplicates == 2
        assert configs[0].fifo_depth is None

    def test_fifo_depth_kept_on_fifo_archs(self):
        spec = SweepSpec.from_dict(
            {"axes": {"bus": ["BFBA"], "style": ["PPA"], "fifo_depth": [256, 512]}}
        )
        configs, _, duplicates = spec.expand()
        assert sorted(c.fifo_depth for c in configs) == [256, 512]
        assert duplicates == 0

    def test_expansion_order_is_independent_of_axis_listing(self):
        axes = {"bus": ["GGBA", "GBAVIII"], "pes": [4, 2], "style": ["FPA"]}
        reversed_axes = {k: list(reversed(v)) for k, v in axes.items()}
        a = SweepSpec.from_dict({"axes": axes}).expand()[0]
        b = SweepSpec.from_dict({"axes": reversed_axes}).expand()[0]
        assert [c.key() for c in a] == [c.key() for c in b]

    def test_style_auto_resolves_per_architecture(self):
        spec = SweepSpec.from_dict(
            {"axes": {"bus": ["BFBA", "GBAVIII"], "style": ["auto"]}}
        )
        configs, _, _ = spec.expand()
        by_bus = {c.bus: c.style for c in configs}
        assert by_bus == {"BFBA": "PPA", "GBAVIII": "FPA"}

    def test_unknown_axis_and_keys_rejected(self):
        with pytest.raises(OptionError):
            SweepSpec.from_dict({"axes": {"voltage": [1]}})
        with pytest.raises(OptionError):
            SweepSpec.from_dict({"sweep": []})
        with pytest.raises(OptionError):
            SweepSpec.from_dict({"axes": {"bus": []}})
        with pytest.raises(OptionError):
            SweepSpec.from_dict({"cases": [{"voltage": 1}]})

    def test_unknown_bus_is_a_counted_skip(self):
        configs, skipped, _ = SweepSpec.from_dict(
            {"axes": {"bus": ["NOSUCH", "GBAVIII"]}}
        ).expand()
        assert len(configs) == 1
        assert skipped == {"unknown-bus": 1}

    def test_config_round_trips_through_options(self):
        config = DseConfig(bus="SPLITBA", pes=6, subsystems=3, packets=1)
        again = DseConfig.from_options(config.options())
        assert again == config
        assert again.key() == config.key()

    def test_width_and_policy_written_into_generated_spec(self):
        config = DseConfig(
            bus="GBAVIII", pes=4, data_width=32, arbiter_policy="round_robin"
        )
        spec = build_config_spec(config)
        for subsystem in spec.subsystems:
            for bus in subsystem.buses:
                assert bus.data_width == 32
                assert bus.arbiter_policy == "round_robin"

    def test_splitba_generalizes_to_n_subsystems(self):
        config = DseConfig(bus="SPLITBA", pes=6, subsystems=3, packets=1)
        spec = build_config_spec(config)
        assert len(spec.subsystems) == 3
        # One global-memory BAN per subsystem (the FPA prerequisite).
        for subsystem in spec.subsystems:
            assert any(ban.is_global_resource for ban in subsystem.bans)

    def test_subsystems_beyond_pes_skipped(self):
        configs, skipped, _ = SweepSpec.from_dict(
            {"axes": {"bus": ["SPLITBA"], "pes": [2], "subsystems": [4]}}
        ).expand()
        assert configs == []
        assert skipped == {"subsystems-exceed-pes": 1}


class TestArtifactCache:
    def test_json_round_trip_and_counters(self, tmp_path):
        cache = ArtifactCache(str(tmp_path))
        key = "ab" * 32
        assert cache.get_json("result", key) is None
        path = cache.put_json("result", key, {"x": 1})
        assert os.path.exists(path)
        assert cache.get_json("result", key) == {"x": 1}
        assert (cache.hits, cache.misses, cache.puts) == (1, 1, 1)
        assert cache.stats()["hit_ratio"] == 0.5
        assert cache.artifact_count() == 1

    def test_object_round_trip(self, tmp_path):
        cache = ArtifactCache(str(tmp_path))
        key = "cd" * 32
        cache.put_object("busyn", key, {"payload": [1, 2, 3]})
        assert cache.get_object("busyn", key) == {"payload": [1, 2, 3]}

    def test_corrupt_artifact_reads_as_miss(self, tmp_path):
        cache = ArtifactCache(str(tmp_path))
        key = "ef" * 32
        cache.put_json("result", key, {"x": 1})
        with open(cache.path("result", key, ".json"), "w") as handle:
            handle.write("{ truncated")
        assert cache.get_json("result", key) is None

    def test_stale_version_reads_as_miss(self, tmp_path):
        cache = ArtifactCache(str(tmp_path))
        key = "01" * 32
        cache.put_json("result", key, {"x": 1})
        path = cache.path("result", key, ".json")
        with open(path) as handle:
            envelope = json.load(handle)
        envelope["version"] = ARTIFACT_VERSION + 1
        with open(path, "w") as handle:
            json.dump(envelope, handle)
        assert cache.get_json("result", key) is None

    def test_non_hash_keys_rejected(self, tmp_path):
        cache = ArtifactCache(str(tmp_path))
        with pytest.raises(ValueError):
            cache.path("result", "../escape", ".json")


class TestBusSynStore:
    def test_store_shared_across_tool_instances(self, tmp_path):
        store = ArtifactCache(str(tmp_path))
        spec = presets.preset("GBAVIII", 4)
        first = BusSyn(store=store)
        generated = first.generate(spec)
        assert (first.generations, first.store_hits) == (1, 0)
        second = BusSyn(store=store)
        again = second.generate(spec)
        assert (second.generations, second.store_hits) == (0, 1)
        assert again.report.gate_count == generated.report.gate_count
        assert again.verilog() == generated.verilog()
        # The in-process memo serves repeats without another disk read.
        second.generate(spec)
        assert second.memo_hits == 1

    def test_cache_false_bypasses_memo_and_store(self, tmp_path):
        store = ArtifactCache(str(tmp_path))
        tool = BusSyn(cache=False, store=store)
        spec = presets.preset("GGBA", 4)
        tool.generate(spec)
        tool.generate(spec)
        assert tool.generations == 2
        assert store.puts == 0
        assert store.artifact_count() == 0

    def test_store_hit_across_processes(self, tmp_path):
        results, _ = run_cases(
            busyn_store_probe, [0], jobs=2, kwargs={"cache_dir": str(tmp_path)}
        )
        assert results[0]["generations"] == 1
        results, _ = run_cases(
            busyn_store_probe, [0], jobs=2, kwargs={"cache_dir": str(tmp_path)}
        )
        assert results[0] == {
            "gate_count": results[0]["gate_count"],
            "store_hits": 1,
            "generations": 0,
        }


class TestSweepDeterminism:
    def test_warm_rerun_is_pure_cache_hits_and_bit_identical(self, tmp_path):
        cache_dir = str(tmp_path / "cache")
        cold = run_sweep(tiny_spec(), jobs=1, cache_dir=cache_dir)
        warm = run_sweep(tiny_spec(), jobs=1, cache_dir=cache_dir)
        assert cold["cache_stats"]["hit_ratio"] == 0.0
        assert warm["cache_stats"]["hit_ratio"] >= 0.95
        assert sweep_fingerprint(cold) == sweep_fingerprint(warm)
        assert all(row["cached"] for row in warm["results"])

    def test_jobs_do_not_change_the_frontier(self, tmp_path):
        serial = run_sweep(tiny_spec(), jobs=1, cache_dir=str(tmp_path / "a"))
        sharded = run_sweep(tiny_spec(), jobs=4, cache_dir=str(tmp_path / "b"))
        assert sweep_fingerprint(serial) == sweep_fingerprint(sharded)
        assert [r["key"] for r in serial["results"]] == [
            r["key"] for r in sharded["results"]
        ]

    def test_kernel_backends_agree(self, tmp_path):
        fingerprints = {
            kernel: sweep_fingerprint(
                run_sweep(
                    tiny_spec(), jobs=1, kernel=kernel, cache_dir=str(tmp_path / kernel)
                )
            )
            for kernel in ("heap", "wheel", "compiled")
        }
        assert len(set(fingerprints.values())) == 1

    def test_kernel_stays_out_of_config_identity(self, tmp_path):
        # Artifacts cached by a heap sweep satisfy a compiled sweep: the
        # backend is not part of the config hash.
        cache_dir = str(tmp_path)
        run_sweep(tiny_spec(), jobs=1, kernel="heap", cache_dir=cache_dir)
        warm = run_sweep(tiny_spec(), jobs=1, kernel="compiled", cache_dir=cache_dir)
        assert warm["cache_stats"]["hit_ratio"] == 1.0

    def test_no_cache_recomputes_but_matches(self, tmp_path):
        cache_dir = str(tmp_path)
        cached = run_sweep(tiny_spec(), jobs=1, cache_dir=cache_dir)
        fresh = run_sweep(tiny_spec(), jobs=1, cache_dir=cache_dir, use_cache=False)
        assert fresh["cache_stats"]["hits"] == 0
        assert sweep_fingerprint(cached) == sweep_fingerprint(fresh)

    def test_budget_caps_the_queue(self, tmp_path):
        capped = run_sweep(tiny_spec(), jobs=1, budget=2, cache_dir=str(tmp_path))
        assert capped["configs"] == 2
        assert capped["expanded"] == 4
        empty = run_sweep(tiny_spec(), jobs=1, budget=0, cache_dir=None)
        assert empty["configs"] == 0
        assert empty["frontier"] == []
        with pytest.raises(ValueError):
            run_sweep(tiny_spec(), jobs=1, budget=-1, cache_dir=None)

    def test_shard_assignment_is_deterministic_and_in_range(self):
        configs, _, _ = smoke_spec().expand()
        for shards in (1, 3, 8):
            assignment = [shard_of(c.key(), shards) for c in configs]
            assert assignment == [shard_of(c.key(), shards) for c in configs]
            assert all(0 <= index < shards for index in assignment)


class TestScoring:
    def test_resilience_and_verify_axes(self, tmp_path):
        spec = SweepSpec.from_dict(
            {
                "cases": [{"bus": "GBAVIII", "style": "FPA", "packets": 1}],
                "score": {"resilience": True, "verify": True},
                "seed": 3,
            }
        )
        summary = run_sweep(spec, jobs=1, cache_dir=str(tmp_path))
        (row,) = summary["results"]
        assert row["options"]["seed"] == 3
        assert 0.0 <= row["resilience"] <= 1.0
        assert row["resilience_detail"]["injected"] > 0
        assert row["resilience_detail"]["invariant_failures"] == []
        assert row["verify"]["ok"] is True
        assert ["resilience", "max"] in summary["axes"]

    def test_seed_left_out_of_identity_without_resilience(self):
        a = SweepSpec.from_dict({"cases": [{"bus": "GGBA"}], "seed": 1})
        b = SweepSpec.from_dict({"cases": [{"bus": "GGBA"}], "seed": 2})
        assert [c.key() for c in a.expand()[0]] == [c.key() for c in b.expand()[0]]


class TestPareto:
    ROWS = [
        {"options": {"n": 1}, "throughput": 3.0, "gate_count": 3000},
        {"options": {"n": 2}, "throughput": 2.5, "gate_count": 1500},
        {"options": {"n": 3}, "throughput": 2.0, "gate_count": 2000},  # dominated by 2
        {"options": {"n": 4}, "throughput": 3.0, "gate_count": 3500},  # dominated by 1
    ]

    def test_dominates(self):
        axes = (("throughput", "max"), ("gate_count", "min"))
        assert dominates(self.ROWS[1], self.ROWS[2], axes)
        assert not dominates(self.ROWS[2], self.ROWS[1], axes)
        assert not dominates(self.ROWS[0], self.ROWS[1], axes)
        assert not dominates(self.ROWS[0], self.ROWS[0], axes)

    def test_frontier_and_rank(self):
        frontier = pareto_frontier(self.ROWS)
        assert [row["options"]["n"] for row in frontier] == [1, 2]
        ranked = rank_rows(self.ROWS)
        assert [row["rank"] for row in ranked] == [1, 2, 3, 4]
        assert [row["pareto"] for row in ranked] == [True, True, False, False]
        # Frontier members rank ahead of every dominated row; dominated
        # rows then sort by the axis order (throughput down).
        assert [row["options"]["n"] for row in ranked] == [1, 2, 4, 3]

    def test_axes_for_adds_resilience_only_when_universal(self):
        rows = [dict(row, resilience=1.0) for row in self.ROWS]
        assert ("resilience", "max") in axes_for(rows)
        rows[0]["resilience"] = None
        assert ("resilience", "max") not in axes_for(rows)


class TestCliRoundTrip:
    def test_dse_verb_cold_warm_and_ledger(self, tmp_path, capsys):
        from repro.cli import main
        from repro.obs.ledger import Ledger

        cache_dir = str(tmp_path / "cache")
        ledger_dir = str(tmp_path / "ledger")
        out = str(tmp_path / "frontier.json")
        argv = [
            "dse",
            "--smoke",
            "--jobs",
            "2",
            "--cache-dir",
            cache_dir,
            "--ledger",
            ledger_dir,
        ]
        assert main(argv + ["-o", out]) == 0
        assert main(argv) == 0
        output = capsys.readouterr().out
        assert "Pareto-efficient configurations" in output
        with open(out) as handle:
            summary = json.load(handle)
        assert summary["configs"] == 10
        assert len(summary["frontier"]) >= 1
        records = Ledger(ledger_dir).records()
        assert [r["body"]["verb"] for r in records] == ["dse", "dse"]
        # Cold and warm sweeps are the same run identity: scheduling and
        # cache facts live in the envelope, not the hashed body.
        assert records[0]["hash"] == records[1]["hash"]
        assert "dse_sweep" not in records[0]["body"]  # sanity: bench-only key


def _dse_bench_record(
    smoke=False, speedup=40.0, hit_ratio=1.0, frontier_identical=True
):
    return build_record(
        "bench",
        options={"kernels": ["compiled"], "smoke": smoke},
        backend="compiled",
        summary={
            "smoke": smoke,
            "failures": [],
            "dse_sweep": {
                "smoke": smoke,
                "kernel": "compiled",
                "configs": 252,
                "errors": 0,
                "frontier_identical": frontier_identical,
                "cold_seconds": 8.0,
                "warm_seconds": 8.0 / speedup,
                "speedup": speedup,
                "cache_stats": {"warm_hit_ratio": hit_ratio},
            },
        },
        rev="abc1234",
    )


class TestDseBenchGates:
    BASELINES = {
        "gates": {
            "ci_regression_tolerance": 0.2,
            "dse_warm_vs_cold": 5.0,
            "dse_warm_hit_ratio_min": 0.95,
        },
        "ci_floor": {},
    }

    def test_healthy_sweep_passes(self):
        assert check_regressions([_dse_bench_record()], self.BASELINES) == []

    def test_scrubbed_keys_leave_the_hashed_body(self):
        record = _dse_bench_record()
        body_dse = record["body"]["summary"]["dse_sweep"]
        assert "speedup" not in body_dse
        assert "cache_stats" not in body_dse
        assert record["envelope"]["measurements"]["dse_sweep.speedup"] == 40.0

    def test_low_hit_ratio_flagged(self):
        findings = check_regressions(
            [_dse_bench_record(hit_ratio=0.5)], self.BASELINES
        )
        assert [f["field"] for f in findings] == ["dse_sweep.cache_stats.warm_hit_ratio"]

    def test_slow_warm_sweep_flagged_outside_smoke_only(self):
        findings = check_regressions(
            [_dse_bench_record(speedup=2.0)], self.BASELINES
        )
        assert [f["field"] for f in findings] == ["dse_sweep.speedup"]
        assert (
            check_regressions(
                [_dse_bench_record(speedup=2.0, smoke=True)], self.BASELINES
            )
            == []
        )

    def test_frontier_mismatch_always_flagged(self):
        findings = check_regressions(
            [_dse_bench_record(frontier_identical=False, smoke=True)], self.BASELINES
        )
        assert [f["field"] for f in findings] == ["dse_sweep.frontier_identical"]
