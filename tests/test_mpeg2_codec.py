"""Tests for the MPEG2 codec: bitstream, DCT, quantization, encode/decode."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.apps.mpeg2.bitstream import (
    BitReader,
    BitWriter,
    END_CODE,
    GOP_START,
    SEQUENCE_START,
)
from repro.apps.mpeg2.codec import (
    SequenceHeader,
    decode_gop_payloads,
    decode_sequence,
    encode_sequence,
    iter_decode_chunk,
    psnr,
    split_stream,
    synthetic_video,
)
from repro.apps.mpeg2.dct import BLOCK, ZIGZAG_ORDER, dct2, dct_matrix, dezigzag, idct2, zigzag
from repro.apps.mpeg2.quant import INTRA_QUANT_MATRIX, dequantize, quantize


class TestBitstream:
    def test_fixed_bits_roundtrip(self):
        writer = BitWriter()
        writer.write_bits(0b1011, 4)
        writer.write_bits(0x1FF, 9)
        reader = BitReader(writer.getvalue())
        assert reader.read_bits(4) == 0b1011
        assert reader.read_bits(9) == 0x1FF

    def test_value_too_wide_rejected(self):
        with pytest.raises(ValueError):
            BitWriter().write_bits(4, 2)

    def test_exp_golomb_known_values(self):
        writer = BitWriter()
        for value in (0, 1, 2, 7):
            writer.write_ue(value)
        reader = BitReader(writer.getvalue())
        assert [reader.read_ue() for _ in range(4)] == [0, 1, 2, 7]

    def test_start_code_scan(self):
        writer = BitWriter()
        writer.write_bits(0xAB, 8)
        writer.start_code(SEQUENCE_START)
        writer.write_bits(3, 4)
        writer.start_code(GOP_START)
        reader = BitReader(writer.getvalue())
        assert reader.next_start_code() == SEQUENCE_START
        assert reader.read_bits(4) == 3
        assert reader.next_start_code() == GOP_START
        assert reader.next_start_code() is None

    def test_expect_start_code_mismatch(self):
        writer = BitWriter()
        writer.start_code(GOP_START)
        reader = BitReader(writer.getvalue())
        with pytest.raises(ValueError):
            reader.expect_start_code(SEQUENCE_START)

    def test_eof(self):
        reader = BitReader(b"\x01")
        reader.read_bits(8)
        with pytest.raises(EOFError):
            reader.read_bits(1)

    @given(st.lists(st.integers(min_value=-500, max_value=500), min_size=1, max_size=100))
    @settings(max_examples=40, deadline=None)
    def test_signed_exp_golomb_roundtrip(self, values):
        writer = BitWriter()
        for value in values:
            writer.write_se(value)
        reader = BitReader(writer.getvalue())
        assert [reader.read_se() for _ in values] == values

    @given(st.lists(st.tuples(st.integers(0, 255), st.integers(1, 8)), min_size=1, max_size=60))
    @settings(max_examples=40, deadline=None)
    def test_bits_roundtrip_property(self, fields):
        writer = BitWriter()
        clipped = [(value & ((1 << width) - 1), width) for value, width in fields]
        for value, width in clipped:
            writer.write_bits(value, width)
        reader = BitReader(writer.getvalue())
        assert [reader.read_bits(width) for _value, width in clipped] == [
            value for value, _width in clipped
        ]


class TestDct:
    def test_basis_is_orthonormal(self):
        c = dct_matrix()
        np.testing.assert_allclose(c @ c.T, np.eye(BLOCK), atol=1e-12)

    def test_roundtrip(self):
        rng = np.random.default_rng(3)
        block = rng.uniform(-128, 127, (8, 8))
        np.testing.assert_allclose(idct2(dct2(block)), block, atol=1e-9)

    def test_dc_coefficient(self):
        block = np.full((8, 8), 16.0)
        coefficients = dct2(block)
        assert coefficients[0, 0] == pytest.approx(128.0)  # 16 * 8
        assert np.abs(coefficients).sum() == pytest.approx(128.0)

    def test_shape_checked(self):
        with pytest.raises(ValueError):
            dct2(np.zeros((4, 4)))

    def test_zigzag_starts_at_dc_and_covers_block(self):
        assert ZIGZAG_ORDER[0] == 0
        assert sorted(ZIGZAG_ORDER) == list(range(64))
        # Classic zig-zag: second and third entries are (0,1) and (1,0).
        assert list(ZIGZAG_ORDER[1:3]) == [1, 8]

    def test_zigzag_roundtrip(self):
        block = np.arange(64).reshape(8, 8)
        np.testing.assert_array_equal(dezigzag(zigzag(block)), block)

    @given(st.integers(0, 2**32 - 1))
    @settings(max_examples=20, deadline=None)
    def test_energy_preserved_property(self, seed):
        rng = np.random.default_rng(seed)
        block = rng.uniform(-100, 100, (8, 8))
        np.testing.assert_allclose(
            np.sum(dct2(block) ** 2), np.sum(block ** 2), rtol=1e-9
        )


class TestQuant:
    def test_quantize_dequantize_error_bounded(self):
        rng = np.random.default_rng(5)
        coefficients = rng.uniform(-200, 200, (8, 8))
        levels = quantize(coefficients, intra=True, quantizer_scale=4)
        recovered = dequantize(levels, intra=True, quantizer_scale=4)
        step = INTRA_QUANT_MATRIX * 4 / 16.0
        assert np.all(np.abs(recovered - coefficients) <= step / 2 + 1e-9)

    def test_higher_scale_coarser(self):
        coefficients = np.full((8, 8), 30.0)
        fine = quantize(coefficients, True, 1)
        coarse = quantize(coefficients, True, 16)
        assert np.abs(fine).sum() > np.abs(coarse).sum()

    def test_scale_bounds(self):
        with pytest.raises(ValueError):
            quantize(np.zeros((8, 8)), True, 0)
        with pytest.raises(ValueError):
            dequantize(np.zeros((8, 8)), False, 0)

    def test_nonintra_flat_matrix(self):
        levels = quantize(np.full((8, 8), 16.0), intra=False, quantizer_scale=16)
        assert np.all(levels == 1)


class TestCodec:
    def test_stream_structure(self):
        stream = encode_sequence(synthetic_video(4))
        chunks = split_stream(stream)
        assert len(chunks) == 2  # 4 frames -> 2 GOPs
        assert stream.endswith(b"\x00\x00\x01" + bytes([END_CODE]))

    def test_stream_size_matches_paper_scale(self):
        """The paper's 16-frame input stream was ~1.47 KB."""
        stream = encode_sequence(synthetic_video(16))
        assert 800 <= len(stream) <= 4000

    def test_decode_quality(self):
        video = synthetic_video(8)
        gops, _stats = decode_sequence(encode_sequence(video))
        decoded = [frame for gop in gops for frame in gop.frames]
        assert len(decoded) == 8
        for original, out in zip(video, decoded):
            assert psnr(original.y, out.y) > 32.0
            assert psnr(original.cb, out.cb) > 32.0

    def test_gop_structure_i_then_p(self):
        gops, _stats = decode_sequence(encode_sequence(synthetic_video(6)))
        for gop in gops:
            assert [frame.picture_type for frame in gop.frames] == ["I", "P"]

    def test_chunks_decode_independently(self):
        video = synthetic_video(8)
        stream = encode_sequence(video)
        serial_gops, _ = decode_sequence(stream)
        for chunk, expected in zip(split_stream(stream), serial_gops):
            gop, _stats = decode_gop_payloads(chunk)
            assert gop.index == expected.index
            for frame, expected_frame in zip(gop.frames, expected.frames):
                np.testing.assert_allclose(frame.y, expected_frame.y)

    def test_iter_decode_matches_batch(self):
        stream = encode_sequence(synthetic_video(4))
        chunk = split_stream(stream)[1]
        batch_gop, batch_stats = decode_gop_payloads(chunk)
        streamed = list(iter_decode_chunk(chunk))
        assert len(streamed) == len(batch_gop.frames)
        total_blocks = sum(stats.blocks for _g, _f, stats in streamed)
        assert total_blocks == batch_stats.blocks
        for (gop_index, frame, _stats), expected in zip(streamed, batch_gop.frames):
            assert gop_index == batch_gop.index
            np.testing.assert_allclose(frame.y, expected.y)

    def test_stats_counts(self):
        _gops, stats = decode_sequence(encode_sequence(synthetic_video(4)))
        assert stats.pictures == 4
        assert stats.blocks == 4 * 6  # 4 luma + 2 chroma per 16x16 picture
        assert stats.motion_blocks == 2 * 6  # P frames only
        assert stats.coefficients > 0

    def test_p_frames_exploit_temporal_redundancy(self):
        """A P frame of unchanged content must cost far less than its I frame."""
        still = synthetic_video(1) * 2  # two identical frames
        both = len(encode_sequence(still))
        i_only = len(encode_sequence(still[:1]))
        p_cost = both - i_only
        assert p_cost < 0.5 * i_only

    def test_header_validation(self):
        with pytest.raises(ValueError):
            SequenceHeader(width=20).validate()
        with pytest.raises(ValueError):
            SequenceHeader(quantizer_scale=0).validate()

    def test_empty_video_rejected(self):
        with pytest.raises(ValueError):
            encode_sequence([])

    def test_synthetic_video_deterministic(self):
        a = synthetic_video(3)
        b = synthetic_video(3)
        for frame_a, frame_b in zip(a, b):
            np.testing.assert_array_equal(frame_a.y, frame_b.y)

    def test_psnr_infinite_for_identical(self):
        frame = synthetic_video(1)[0]
        assert psnr(frame.y, frame.y) == float("inf")
