"""Tests for bus segments, bridges, and routing."""

import pytest

from repro.sim.bus import BusBridge, BusSegment, find_route
from repro.sim.kernel import Simulator


@pytest.fixture
def sim():
    return Simulator()


def occupy(sim, segment, master, words, write=False, extra=0, start=0):
    timings = []

    def body():
        yield sim.timeout(start)
        timing = yield from segment.occupy(master, words, write, extra_cycles=extra)
        timings.append(timing)

    sim.process(body())
    return timings


class TestBusSegment:
    def test_read_timing(self, sim):
        segment = BusSegment(sim, "bus", grant_cycles=3)
        timings = occupy(sim, segment, "m0", 64)
        sim.run()
        timing = timings[0]
        # 3 grant + 32 beats (64-bit bus = 2 words/beat).
        assert timing.arbitration == 3
        assert timing.transfer == 32
        assert timing.total == 35

    def test_write_grant_override(self, sim):
        segment = BusSegment(sim, "bus", grant_cycles=5, write_grant_cycles=3)
        reads = occupy(sim, segment, "r", 2, write=False)
        sim.run()
        assert reads[0].arbitration == 5
        writes = occupy(sim, segment, "w", 2, write=True)
        sim.run()
        assert writes[0].arbitration == 3

    def test_beat_cycles_scale_transfer(self, sim):
        segment = BusSegment(sim, "bus", beat_cycles=2)
        timings = occupy(sim, segment, "m", 64)
        sim.run()
        assert timings[0].transfer == 64  # 32 beats x 2 cycles

    def test_memory_latency_held_on_bus(self, sim):
        segment = BusSegment(sim, "bus")
        timings = occupy(sim, segment, "m", 2, extra=7)
        sim.run()
        assert timings[0].memory == 7
        assert timings[0].total == 3 + 1 + 7

    def test_zero_words_still_one_beat(self, sim):
        segment = BusSegment(sim, "bus")
        assert segment.beats_for(0) == 1

    def test_data_width_must_be_word_multiple(self, sim):
        with pytest.raises(ValueError):
            BusSegment(sim, "bad", data_width=48)

    def test_contention_serializes(self, sim):
        segment = BusSegment(sim, "bus")
        first = occupy(sim, segment, "a", 64)
        second = occupy(sim, segment, "b", 64)
        sim.run()
        assert second[0].start == 0
        assert second[0].end > first[0].end
        assert segment.stats.transactions == 2

    def test_stats_utilization(self, sim):
        segment = BusSegment(sim, "bus")
        occupy(sim, segment, "a", 64)
        sim.run()
        util = segment.stats.utilization(sim.now)
        assert 0.9 <= util <= 1.0

    def test_words_per_beat(self, sim):
        assert BusSegment(sim, "b32", data_width=32).words_per_beat == 1
        assert BusSegment(sim, "b64", data_width=64).words_per_beat == 2
        assert BusSegment(sim, "b128", data_width=128).words_per_beat == 4


class TestBusBridge:
    def test_cross_charges_hop(self, sim):
        a = BusSegment(sim, "a")
        b = BusSegment(sim, "b")
        bridge = BusBridge(sim, "bb", a, b, hop_cycles=4)

        def body():
            yield from bridge.cross()

        sim.process(body())
        sim.run()
        assert sim.now == 4
        assert bridge.crossings == 1

    def test_disabled_bridge_refuses(self, sim):
        a = BusSegment(sim, "a")
        b = BusSegment(sim, "b")
        bridge = BusBridge(sim, "bb", a, b, enabled=False)

        def body():
            yield sim.timeout(1)
            yield from bridge.cross()

        process = sim.process(body())
        sim.run()
        with pytest.raises(RuntimeError):
            process.value

    def test_other_side(self, sim):
        a = BusSegment(sim, "a")
        b = BusSegment(sim, "b")
        bridge = BusBridge(sim, "bb", a, b)
        assert bridge.other_side(a) is b
        assert bridge.other_side(b) is a
        with pytest.raises(ValueError):
            bridge.other_side(BusSegment(sim, "c"))

    def test_connects(self, sim):
        a, b, c = (BusSegment(sim, n) for n in "abc")
        bridge = BusBridge(sim, "bb", a, b)
        assert bridge.connects(a, b) and bridge.connects(b, a)
        assert not bridge.connects(a, c)


class TestRouting:
    def _chain(self, sim, n):
        segments = [BusSegment(sim, "s%d" % i) for i in range(n)]
        bridges = [
            BusBridge(sim, "bb%d" % i, segments[i], segments[i + 1])
            for i in range(n - 1)
        ]
        return segments, bridges

    def test_trivial_route(self, sim):
        segments, bridges = self._chain(sim, 2)
        route = find_route(segments[0], segments[0], bridges)
        assert route == [(segments[0], None)]

    def test_single_hop(self, sim):
        segments, bridges = self._chain(sim, 2)
        route = find_route(segments[0], segments[1], bridges)
        assert [seg.name for seg, _b in route] == ["s0", "s1"]
        assert route[0][1] is bridges[0]
        assert route[-1][1] is None

    def test_multi_hop_shortest(self, sim):
        segments, bridges = self._chain(sim, 4)
        # Add a shortcut s0 <-> s3.
        shortcut = BusBridge(sim, "short", segments[0], segments[3])
        route = find_route(segments[0], segments[3], bridges + [shortcut])
        assert len(route) == 2  # takes the shortcut

    def test_disabled_bridges_excluded(self, sim):
        segments, bridges = self._chain(sim, 3)
        bridges[1].enabled = False
        with pytest.raises(LookupError):
            find_route(segments[0], segments[2], bridges)

    def test_ring_route(self, sim):
        segments, bridges = self._chain(sim, 4)
        ring = BusBridge(sim, "ring", segments[3], segments[0])
        route = find_route(segments[0], segments[3], bridges + [ring])
        assert len(route) == 2  # around the back
