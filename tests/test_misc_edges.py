"""Edge cases across the stack: small topologies, overrides, determinism."""

import pytest

from repro import BusSyn, build_machine, presets
from repro.cli import main
from repro.hdl import emit_design
from repro.options.schema import BANSpec, BusSpec, BusSubsystemSpec, BusSystemSpec, MemorySpec
from repro.sim.bus import find_route
from repro.soc.api import SocAPI


class TestSmallTopologies:
    def test_two_pe_gbavi_transfers(self):
        machine = build_machine(presets.preset("GBAVI", 2))
        assert len(machine.bridges) == 1
        machine.memory("SRAM_A").write(0, [5])
        api_b = SocAPI(machine, "B")

        def program():
            values = yield from api_b.read(("SRAM_A", 0), 1)
            return values

        process = machine.pe("B").run(program())
        machine.sim.run()
        assert process.value == [5]

    def test_two_pe_gbavii(self):
        machine = build_machine(presets.preset("GBAVII", 2))
        api = SocAPI(machine, "B")

        def program():
            yield from api.var_write("X", 1)
            value = yield from api.var_read("X")
            return value

        process = machine.pe("B").run(program())
        machine.sim.run()
        assert process.value == 1

    def test_one_pe_systems_build_and_generate(self):
        for name in ("BFBA", "GBAVI", "GBAVII", "GBAVIII", "GGBA", "CCBA"):
            spec = presets.preset(name, 1)
            machine = build_machine(spec)
            assert len(machine.pes) == 1
            assert BusSyn().generate(spec).lint_errors() == []


class TestOverridesAndKnobs:
    def test_arbiter_policy_override_applies(self):
        machine = build_machine(presets.preset("GGBA", 4), arbiter_policy="round_robin")
        segment = machine.segments["GLOBAL_BUS_SUB1"]
        assert segment.arbiter.policy_name == "round_robin"

    def test_cpi_override(self):
        machine = build_machine(presets.preset("GBAVIII", 4), cycles_per_instruction=1.0)
        pe = machine.pe("A")

        def program():
            yield from pe.compute(100)

        pe.run(program())
        machine.sim.run()
        assert pe.stats.compute_cycles == 100

    def test_elapsed_seconds(self):
        machine = build_machine(presets.preset("GBAVIII", 4))
        machine.sim.timeout(100_000_000)  # one second at 100 MHz
        machine.sim.run()
        assert machine.elapsed_seconds() == pytest.approx(1.0)

    def test_disabled_bridge_isolates_subsystems(self):
        machine = build_machine(presets.preset("SPLITBA", 4))
        machine.bridges[0].enabled = False
        api_a = SocAPI(machine, "A")
        far = machine.shared_memory_of["C"]

        def program():
            yield from api_a.read((far, 0), 1)

        process = machine.pe("A").run(program())
        machine.sim.run()
        with pytest.raises(LookupError):
            process.value


class TestSpecVariants:
    def test_dpram_memory_type_accepted(self):
        spec = BusSystemSpec(
            name="DPRAM_TEST",
            subsystems=[
                BusSubsystemSpec(
                    name="S",
                    bans=[
                        BANSpec(
                            name="A",
                            cpu_type="MPC755",
                            memories=[MemorySpec("DPRAM", 16, 64, name="SRAM_A")],
                        ),
                        BANSpec(
                            name="G",
                            cpu_type="NONE",
                            memories=[MemorySpec("SRAM", 18, 64, name="GLOBAL_SRAM_G")],
                            is_global_resource=True,
                        ),
                    ],
                    buses=[BusSpec("GBAVIII")],
                )
            ],
        )
        spec.validate()
        machine = build_machine(spec)
        assert machine.memory("SRAM_A").size_words == (1 << 16) * 2

    def test_dram_backed_ban(self):
        spec = presets.preset("GBAVIII", 2)
        spec.subsystems[0].pe_bans[0].memories[0] = MemorySpec(
            "DRAM", 20, 64, name="SRAM_A"
        )
        machine = build_machine(spec)
        from repro.sim.memory import Dram

        assert isinstance(machine.memory("SRAM_A"), Dram)

    def test_mixed_cpu_types_in_one_subsystem(self):
        spec = presets.preset("GBAVIII", 3)
        spec.subsystems[0].pe_bans[1].cpu_type = "ARM9TDMI"
        generated = BusSyn().generate(spec)
        assert generated.lint_errors() == []
        modules = generated.design().modules
        assert "cbi_arm9tdmi" in modules and "cbi_mpc755" in modules


class TestDeterminism:
    def test_emitted_verilog_is_deterministic(self):
        first = BusSyn().generate(presets.preset("HYBRID", 4)).verilog()
        second = BusSyn().generate(presets.preset("HYBRID", 4)).verilog()
        assert first == second

    def test_simulation_is_deterministic(self):
        from repro.apps.ofdm import OfdmParameters, run_ofdm

        params = OfdmParameters(data_samples=256, guard_samples=64, packets=2)
        runs = [
            run_ofdm(build_machine(presets.preset("GBAVIII", 4)), "FPA", params).cycles
            for _ in range(2)
        ]
        assert runs[0] == runs[1]


class TestCliTable:
    def test_table5_command(self, capsys):
        assert main(["table", "5"]) == 0
        out = capsys.readouterr().out
        assert "Table V" in out and "shape check: OK" in out
