"""Tests for the CLI, the option input-file format, and the VCD export."""

import os

import pytest

from repro.cli import main
from repro.options import presets
from repro.options.inputfile import parse_option_text, render_option_text
from repro.options.schema import OptionError
from repro.sim.fabric import build_machine
from repro.sim.vcd import VcdWriter, vcd_from_machine
from repro.soc.api import SocAPI
from repro.soc.handshake import GbaviChannel

EXAMPLE9 = """
# Example 9: the BFBA Bus System of Figure 4
bus_system 1
subsystem SUB1
  bans 4
  bus BFBA
    address_width 32
    data_width 64
    fifo_depth 1024
  ban A
    cpu MPC755
    memory SRAM 20 64
"""


class TestInputFile:
    def test_example9_round_trips_the_paper(self):
        """Example 9's input sequence yields the Figure 4 BFBA system."""
        spec = parse_option_text(EXAMPLE9, name="BFBA")
        assert spec.pe_count == 4
        assert spec.subsystems[0].buses[0].bus_type == "BFBA"
        assert spec.subsystems[0].buses[0].fifo_depth == 1024
        # 4 x 8 MB = the paper's 32 MB of total non-cache memory.
        assert spec.total_memory_bytes == 32 * 2**20

    def test_ban_fill_clones_shape(self):
        spec = parse_option_text(EXAMPLE9)
        bans = spec.subsystems[0].pe_bans
        assert [ban.name for ban in bans] == ["A", "B", "C", "D"]
        for ban in bans:
            assert ban.cpu_type == "MPC755"
            assert ban.memories[0].address_width == 20

    def test_global_and_ip_modifiers(self):
        text = """
bus_system 1
subsystem S
  bus GBAVIII
  ban A
    cpu MPC755
    memory SRAM 20 64
  ban G global
    memory SRAM 20 64
  ban FFT ip DCT attach A
"""
        spec = parse_option_text(text)
        subsystem = spec.subsystems[0]
        assert subsystem.global_bans[0].name == "G"
        ip = subsystem.ip_bans[0]
        assert ip.non_cpu_type == "DCT" and ip.ip_attach == "A"

    def test_subsystem_count_mismatch(self):
        with pytest.raises(OptionError):
            parse_option_text("bus_system 2\nsubsystem S\n  bus GBAVI\n  ban A\n    cpu MPC755\n    memory SRAM 20 64\n")

    def test_unknown_line(self):
        with pytest.raises(OptionError):
            parse_option_text("frobnicate 3\n")

    @pytest.mark.parametrize("name", ["BFBA", "GBAVII", "SPLITBA", "HYBRID"])
    def test_render_parse_round_trip(self, name):
        spec = presets.preset(name, 4)
        text = render_option_text(spec)
        again = parse_option_text(text, name=name)
        assert again.pe_count == spec.pe_count
        assert len(again.subsystems) == len(spec.subsystems)
        for sub_a, sub_b in zip(spec.subsystems, again.subsystems):
            assert [b.bus_type for b in sub_a.buses] == [b.bus_type for b in sub_b.buses]
            assert [b.name for b in sub_a.bans] == [b.name for b in sub_b.bans]


class TestCli:
    def test_generate_writes_files(self, tmp_path):
        out = str(tmp_path / "gen")
        code = main(["generate", "--preset", "GBAVI", "--pes", "2", "--out", out])
        assert code == 0
        files = os.listdir(out)
        assert "report.txt" in files
        assert any(name.startswith("bus_system_") for name in files)

    def test_generate_from_option_file(self, tmp_path):
        option_file = tmp_path / "system.txt"
        option_file.write_text(EXAMPLE9)
        out = str(tmp_path / "gen")
        code = main(["generate", "--options", str(option_file), "--out", out])
        assert code == 0

    def test_simulate_ofdm(self, capsys):
        code = main(
            ["simulate", "--preset", "GBAVIII", "--app", "ofdm", "--style", "FPA",
             "--packets", "2"]
        )
        assert code == 0
        assert "Mbps" in capsys.readouterr().out

    def test_simulate_database(self, capsys):
        code = main(["simulate", "--preset", "GGBA", "--app", "database"])
        assert code == 0
        assert "41 tasks" in capsys.readouterr().out

    def test_list(self, capsys):
        assert main(["list"]) == 0
        out = capsys.readouterr().out
        assert "GBAVII" in out and "MBI_SRAM" in out


class TestVcd:
    def test_writer_format(self):
        writer = VcdWriter()
        a = writer.add_signal("top", "sig_a")
        b = writer.add_signal("top", "bus_b", width=4)
        writer.change(0, a, 0)
        writer.change(5, a, 1)
        writer.change(5, b, 0b1010, width=4)
        text = writer.dumps()
        assert "$var wire 1" in text and "$var wire 4" in text
        assert "#5" in text
        assert "b1010" in text
        assert text.index("#0") < text.index("#5")

    def test_negative_time_rejected(self):
        writer = VcdWriter()
        identifier = writer.add_signal("top", "x")
        with pytest.raises(ValueError):
            writer.change(-1, identifier, 0)

    def test_machine_export_contains_handshake_edges(self):
        machine = build_machine(presets.preset("GBAVI", 4), trace_hsregs=True)
        for segment in machine.segments.values():
            segment.arbiter.trace_enabled = True
        channel = GbaviChannel(SocAPI(machine, "A"), SocAPI(machine, "B"), 8)

        def sender():
            yield from channel.send(list(range(8)))

        def receiver():
            yield from channel.recv()

        machine.pe("A").run(sender())
        machine.pe("B").run(receiver())
        machine.sim.run()
        text = vcd_from_machine(machine)
        assert "done_op" in text and "done_rv" in text
        assert "gnt_mpc755_a" in text
        # The transfer produces real value changes after time zero: the
        # handshake registers toggle and bus grants come and go.
        body = text.split("$enddefinitions $end", 1)[1]
        after_t0 = body.split("#", 2)[-1]
        scalar_changes = [
            line for line in after_t0.splitlines() if line[:1] in ("0", "1") and len(line) > 1
        ]
        assert len(scalar_changes) >= 6


class TestVcdDumpvars:
    """Satellite: $dumpvars initial block + same-timestamp dedupe."""

    def test_header_then_dumpvars_block(self):
        writer = VcdWriter()
        a = writer.add_signal("top", "a")
        b = writer.add_signal("top", "bus", width=4)
        writer.change(0, a, 1)
        writer.change(7, a, 0)
        text = writer.dumps()
        lines = text.splitlines()
        end_defs = lines.index("$enddefinitions $end")
        # Spec layout: definitions, then the time-zero $dumpvars block
        # establishing an initial value for *every* declared signal.
        assert lines[end_defs + 1] == "#0"
        assert lines[end_defs + 2] == "$dumpvars"
        block = lines[end_defs + 3 : lines.index("$end", end_defs)]
        assert "1%s" % a in block  # recorded time-zero value
        assert "bx %s" % b in block  # undumped signal starts as x
        assert lines.index("$end", end_defs) < lines.index("#7")

    def test_undumped_scalar_starts_x(self):
        writer = VcdWriter()
        a = writer.add_signal("top", "a")
        text = writer.dumps()
        assert "x%s" % a in text.split("$dumpvars", 1)[1].split("$end", 1)[0]

    def test_same_timestamp_last_write_wins(self):
        writer = VcdWriter()
        a = writer.add_signal("top", "a")
        writer.change(5, a, 0)
        writer.change(5, a, 1)
        text = writer.dumps()
        at_5 = text.split("#5", 1)[1]
        changes = [line for line in at_5.splitlines() if line.endswith(a)]
        # One change only, carrying the final value -- two lines for one
        # signal at one timestamp would be ambiguous to viewers.
        assert changes == ["1%s" % a]

    def test_same_timestamp_dedupe_multibit(self):
        writer = VcdWriter()
        bus = writer.add_signal("top", "bus", width=4)
        writer.change(3, bus, 0b0001, width=4)
        writer.change(3, bus, 0b1010, width=4)
        text = writer.dumps()
        assert "b1010 %s" % bus in text
        assert "b1 %s" % bus not in text

    def test_distinct_timestamps_all_kept(self):
        writer = VcdWriter()
        a = writer.add_signal("top", "a")
        writer.change(1, a, 1)
        writer.change(2, a, 0)
        writer.change(3, a, 1)
        text = writer.dumps()
        for stamp in ("#1", "#2", "#3"):
            assert stamp in text


class TestGenerateLintReporting:
    """Satellite: warnings surfaced in generate output + --strict gate."""

    @staticmethod
    def _force_warning(monkeypatch):
        from repro.core.busyn import GeneratedBusSystem
        from repro.hdl.lint import LintMessage

        monkeypatch.setattr(
            GeneratedBusSystem,
            "lint",
            lambda self: [LintMessage("warning", "module m", "port left dangling")],
        )

    def test_warning_count_printed_and_reported(self, tmp_path, capsys, monkeypatch):
        self._force_warning(monkeypatch)
        out = str(tmp_path / "gen")
        code = main(["generate", "--preset", "GBAVI", "--pes", "2", "--out", out])
        assert code == 0  # warnings alone do not fail a non-strict run
        assert "clean, 1 warnings" in capsys.readouterr().out
        report = open(os.path.join(out, "report.txt")).read()
        assert "lint warnings: 1" in report
        assert "port left dangling" in report

    def test_strict_turns_warnings_into_failure(self, tmp_path, capsys, monkeypatch):
        self._force_warning(monkeypatch)
        out = str(tmp_path / "gen")
        code = main(
            ["generate", "--preset", "GBAVI", "--pes", "2", "--out", out, "--strict"]
        )
        assert code == 1

    def test_strict_passes_on_clean_design(self, tmp_path):
        out = str(tmp_path / "gen")
        code = main(
            ["generate", "--preset", "GBAVIII", "--pes", "2", "--out", out, "--strict"]
        )
        assert code == 0
