"""Tests for the SoC software API and handshake channels."""

import pytest

from repro.options import presets
from repro.sim.fabric import build_machine
from repro.soc.api import SocAPI
from repro.soc.handshake import (
    BfbaChannel,
    FpaDistributor,
    GbaviChannel,
    GlobalChannel,
    make_channel,
)


def run_pair(machine, sender_program, receiver_program, sender="A", receiver="B"):
    sender_process = machine.pe(sender).run(sender_program)
    receiver_process = machine.pe(receiver).run(receiver_program)
    machine.sim.run()
    return sender_process.value, receiver_process.value


class TestSocAPI:
    def test_default_memory_local(self):
        machine = build_machine(presets.preset("GBAVIII", 4))
        api = SocAPI(machine, "A")
        assert api.default_memory == "SRAM_A"

    def test_default_memory_shared_when_no_local(self):
        machine = build_machine(presets.preset("GGBA", 4))
        api = SocAPI(machine, "A")
        assert api.default_memory == "GLOBAL_SRAM_G"

    def test_resolve_flat_address(self):
        machine = build_machine(presets.preset("GBAVIII", 4))
        api = SocAPI(machine, "A")
        assert api.resolve(0x400) == ("SRAM_A", 0x400)
        assert api.resolve(("GLOBAL_SRAM_G", 2)) == ("GLOBAL_SRAM_G", 2)

    def test_mem_read_moves_data(self):
        """Example 3: mem_read(64, src, dst) copies between memories."""
        machine = build_machine(presets.preset("GBAVIII", 4))
        machine.memory("GLOBAL_SRAM_G").write(0, list(range(64)))
        api = SocAPI(machine, "B")
        target = api.alloc(64)

        def program():
            values = yield from api.mem_read(64, ("GLOBAL_SRAM_G", 0), target)
            return values

        process = machine.pe("B").run(program())
        machine.sim.run()
        assert process.value == list(range(64))
        assert machine.memory("SRAM_B").read(target[1], 64) == list(range(64))

    def test_api_overhead_charged(self):
        machine = build_machine(presets.preset("GBAVIII", 4))
        api = SocAPI(machine, "A")
        target = api.alloc(4)

        def program():
            yield from api.mem_write([1, 2, 3, 4], target)

        machine.pe("A").run(program())
        machine.sim.run()
        expected = int(api.api_call_instructions * api.pe.cycles_per_instruction)
        assert api.pe.stats.compute_cycles >= expected

    def test_var_write_read(self):
        machine = build_machine(presets.preset("GBAVIII", 4))
        api = SocAPI(machine, "A")

        def program():
            yield from api.var_write("FLAG", 1)
            value = yield from api.var_read("FLAG")
            return value

        process = machine.pe("A").run(program())
        machine.sim.run()
        assert process.value == 1

    def test_var_wait_crosses_pes(self):
        machine = build_machine(presets.preset("GBAVIII", 4))
        api_a, api_b = SocAPI(machine, "A"), SocAPI(machine, "B")

        def setter():
            yield from api_a.compute(5000)
            yield from api_a.var_write("GO", 1)

        def waiter():
            yield from api_b.var_wait("GO", 1)
            return machine.sim.now

        _s, wake_time = run_pair(machine, setter(), waiter())
        assert wake_time >= 2000  # not before the setter's compute phase
        assert api_b.pe.stats.handshake_polls >= 2

    def test_reg_wait_uses_notification(self):
        machine = build_machine(presets.preset("BFBA", 4))
        api_a, api_b = SocAPI(machine, "A"), SocAPI(machine, "B")
        hs_device = machine.hsregs_for("A", "B").name

        def setter():
            yield from api_a.compute(4000)
            yield from api_a.reg_write(hs_device, "DONE_RV", 1)
            return machine.sim.now

        def waiter():
            yield from api_b.reg_wait(hs_device, "DONE_RV", 1)
            return machine.sim.now

        write_time, wake = run_pair(machine, setter(), waiter())
        assert wake >= write_time
        assert wake - write_time <= 150  # woken promptly by the change event

    def test_scattered_access_traffic(self):
        machine = build_machine(presets.preset("GBAVIII", 4))
        api = SocAPI(machine, "A")
        buffer = api.alloc(16)

        def program():
            yield from api.scattered_access(buffer, 40)

        machine.pe("A").run(program())
        machine.sim.run()
        segment = machine.home_segment[api.pe.name]
        assert segment.stats.transactions == 5  # 40 ops in groups of 8


@pytest.mark.parametrize(
    "preset_name,channel_cls",
    [("GBAVI", GbaviChannel), ("BFBA", BfbaChannel), ("GBAVIII", GlobalChannel)],
)
class TestChannels:
    def test_single_transfer(self, preset_name, channel_cls):
        machine = build_machine(presets.preset(preset_name, 4))
        channel = channel_cls(SocAPI(machine, "A"), SocAPI(machine, "B"), 32)
        payload = [i * 3 for i in range(32)]

        def sender():
            yield from channel.send(payload)

        def receiver():
            values = yield from channel.recv()
            yield from channel.release()
            return values

        _s, received = run_pair(machine, sender(), receiver())
        assert received == payload

    def test_pipelined_transfers_preserve_order(self, preset_name, channel_cls):
        machine = build_machine(presets.preset(preset_name, 4))
        channel = channel_cls(SocAPI(machine, "A"), SocAPI(machine, "B"), 16)
        batches = [[k * 100 + i for i in range(16)] for k in range(5)]

        def sender():
            for batch in batches:
                yield from channel.send(batch)

        def receiver():
            out = []
            for _ in batches:
                values = yield from channel.recv()
                out.append(list(values))
                yield from channel.release()
            return out

        _s, received = run_pair(machine, sender(), receiver())
        assert received == batches
        assert channel.transfers == 5

    def test_oversized_send_rejected(self, preset_name, channel_cls):
        machine = build_machine(presets.preset(preset_name, 4))
        channel = channel_cls(SocAPI(machine, "A"), SocAPI(machine, "B"), 8)

        def sender():
            yield from channel.send(list(range(9)))

        process = machine.pe("A").run(sender())
        machine.sim.run()
        with pytest.raises(ValueError):
            process.value


class TestMakeChannel:
    def test_selects_by_topology(self):
        for preset_name, kind in [
            ("BFBA", "BFBA"),
            ("GBAVI", "GBAVI"),
            ("GBAVIII", "GLOBAL"),
            ("GGBA", "GLOBAL"),
        ]:
            machine = build_machine(presets.preset(preset_name, 4))
            channel = make_channel(SocAPI(machine, "A"), SocAPI(machine, "B"), 8)
            assert channel.kind == kind, preset_name

    def test_hybrid_prefers_fifo_but_honours_override(self):
        machine = build_machine(presets.preset("HYBRID", 4))
        assert make_channel(SocAPI(machine, "A"), SocAPI(machine, "B"), 8).kind == "BFBA"
        machine = build_machine(presets.preset("HYBRID", 4))
        assert (
            make_channel(SocAPI(machine, "A"), SocAPI(machine, "B"), 8, prefer="GLOBAL").kind
            == "GLOBAL"
        )

    def test_non_adjacent_on_bfba_falls_through(self):
        machine = build_machine(presets.preset("BFBA", 4))
        with pytest.raises(LookupError):
            make_channel(SocAPI(machine, "A"), SocAPI(machine, "C"), 8)


class TestFpaDistributor:
    def test_distribute_and_collect(self):
        machine = build_machine(presets.preset("GBAVIII", 4))
        apis = {ban: SocAPI(machine, ban) for ban in machine.pe_order}
        workers = {ban: apis[ban] for ban in ("B", "C", "D")}
        distributor = FpaDistributor(apis["A"], workers, chunk_words=16, result_words=16)
        chunks = {ban: [ord(ban)] * 16 for ban in workers}

        def dist_program():
            for ban in workers:
                yield from distributor.deliver(ban, chunks[ban])
            results = {}
            for ban in workers:
                results[ban] = yield from distributor.collect(ban)
            return results

        def worker_program(ban):
            def body():
                values = yield from distributor.fetch(ban)
                yield from apis[ban].compute(1000)
                yield from distributor.complete(ban, [v + 1 for v in values])
            return body

        dist_process = machine.pe("A").run(dist_program())
        for ban in workers:
            machine.pe(ban).run(worker_program(ban)())
        machine.sim.run()
        assert dist_process.value == {ban: [ord(ban) + 1] * 16 for ban in workers}
        # Step trace covers deliver/fetch/complete/collect for each worker.
        labels = [label.split(":")[0] for label, _cycle in distributor.trace]
        assert labels.count("1") == 3 and labels.count("5") == 3
