"""Tests for the Module Library (templates, expansion, built-ins)."""

import pytest

from repro.hdl import Design, lint_design, parse_design
from repro.moduledb import (
    DEFAULT_PARAMETERS,
    ModuleLibrary,
    TemplateError,
    default_library,
    parse_library_text,
    render_library_text,
)


SAMPLE_LIBRARY = """
%module COUNTER
module @MODULE_NAME@(clk, rst_n, count);
  parameter WIDTH = @WIDTH@;
  input clk;
  input rst_n;
  output [@WIDTH_MSB@:0] count;
  reg [@WIDTH_MSB@:0] count_q;
  assign count = count_q;
  always @(posedge clk or negedge rst_n) begin
    if (!rst_n) begin
      count_q <= @WIDTH@'b0;
    end else begin
      count_q <= count_q + 1;
    end
  end
endmodule
%endmodule COUNTER
"""


class TestFormat:
    def test_parse_blocks(self):
        templates = parse_library_text(SAMPLE_LIBRARY)
        assert list(templates) == ["COUNTER"]
        assert "@WIDTH@" in templates["COUNTER"].body

    def test_parameters_listed_in_order(self):
        template = parse_library_text(SAMPLE_LIBRARY)["COUNTER"]
        assert template.parameters[0] == "MODULE_NAME"
        assert "WIDTH" in template.parameters

    def test_expand_substitutes(self):
        template = parse_library_text(SAMPLE_LIBRARY)["COUNTER"]
        text = template.expand({"MODULE_NAME": "ctr8", "WIDTH": 8, "WIDTH_MSB": 7})
        assert "module ctr8(" in text
        assert "@WIDTH@" not in text and "@WIDTH_MSB@" not in text

    def test_expand_missing_parameter(self):
        template = parse_library_text(SAMPLE_LIBRARY)["COUNTER"]
        with pytest.raises(TemplateError):
            template.expand({"MODULE_NAME": "x"})

    def test_duplicate_component_rejected(self):
        with pytest.raises(TemplateError):
            parse_library_text(SAMPLE_LIBRARY + SAMPLE_LIBRARY)

    def test_stray_text_rejected(self):
        with pytest.raises(TemplateError):
            parse_library_text("junk before\n" + SAMPLE_LIBRARY)

    def test_render_roundtrip(self):
        templates = parse_library_text(SAMPLE_LIBRARY)
        text = render_library_text(templates)
        again = parse_library_text(text)
        assert again["COUNTER"].body == templates["COUNTER"].body


class TestLibrary:
    def test_load_and_generate_user_component(self):
        library = ModuleLibrary(SAMPLE_LIBRARY)
        generated = library.generate("COUNTER", "ctr4", WIDTH=4)
        assert generated.name == "ctr4"
        assert generated.module.port("count").width == 4

    def test_generation_cached(self):
        library = ModuleLibrary(SAMPLE_LIBRARY)
        a = library.generate("COUNTER", "c", WIDTH=4)
        b = library.generate("COUNTER", "c", WIDTH=4)
        assert a is b

    def test_unknown_component(self):
        library = ModuleLibrary()
        with pytest.raises(KeyError):
            library.generate("MISSING")

    def test_double_load_rejected(self):
        library = ModuleLibrary(SAMPLE_LIBRARY)
        with pytest.raises(TemplateError):
            library.load_text(SAMPLE_LIBRARY)

    def test_derived_msb(self):
        library = ModuleLibrary(SAMPLE_LIBRARY)
        generated = library.generate("COUNTER", "c16", WIDTH=16)
        assert generated.module.port("count").width == 16


class TestBuiltins:
    @pytest.fixture(scope="class")
    def library(self):
        return default_library()

    def test_paper_component_list_present(self, library):
        """Section V.A items (A)-(I) are all in the library."""
        for component in (
            "MPC750", "MPC755", "MPC7410", "ARM9TDMI",          # (A)
            "CBI_MPC755", "CBI_ARM9TDMI",                        # (B)
            "SRAM_comp", "DRAM_comp",                            # (C)
            "MBI_SRAM", "MBI_DRAM",                              # (D)
            "BB_GBAVI", "BB_SPLITBA",                            # (E)
            "ARBITER_FCFS", "ARBITER_ROUND_ROBIN", "ARBITER_PRIORITY",  # (F)
            "ABI",                                               # (G)
            "GBI_GBAVI", "GBI_GBAVIII", "GBI_BFBA",              # (H)
            "SB_GBAVI", "SB_GBAVIII", "SB_BFBA",                 # (I)
            "HS_REGS", "BIFIFO",
        ):
            assert component in library, component

    def test_every_component_generates_and_lints(self, library):
        for component in library.components():
            generated = library.generate(component, component.lower() + "_x")
            design = parse_design(generated.text, top=generated.name)
            errors = [m for m in lint_design(design) if m.severity == "error"]
            assert errors == [], (component, errors)

    def test_mbi_sram_matches_paper_parameters(self, library):
        """Example 6: MEM_A_WIDTH=20, MEM_D_WIDTH=64, BIT_DIFFERENCE=0."""
        generated = library.generate("MBI_SRAM", "mbi20")
        assert generated.parameters["MEM_A_WIDTH"] == 20
        assert generated.parameters["MEM_D_WIDTH"] == 64
        assert generated.module.port("sram_addr").width == 20
        assert generated.module.port("sram_dq").width == 64

    def test_mbi_sram_bit_difference_padding(self, library):
        generated = library.generate(
            "MBI_SRAM", "mbi_narrow", MEM_D_WIDTH=32, BIT_DIFFERENCE=32
        )
        assert "32'b0," in generated.text

    def test_memory_template_any_size(self, library):
        """Component (C): 'generate any size of behavioural memory'."""
        for width in (10, 16, 24):
            generated = library.generate("SRAM_comp", "s%d" % width, MEM_A_WIDTH=width)
            assert generated.module.port("sram_addr").width == width

    def test_arbiter_master_scaling(self, library):
        for n in (2, 8, 16):
            generated = library.generate("ARBITER_FCFS", "arb%d" % n, N_MASTERS=n)
            assert generated.module.port("req_b").width == n

    def test_bififo_pointer_width_follows_depth(self, library):
        shallow = library.generate("BIFIFO", "f16", FIFO_DEPTH=16)
        deep = library.generate("BIFIFO", "f1024", FIFO_DEPTH=1024)
        assert deep.parameters["PTR_WIDTH"] > shallow.parameters["PTR_WIDTH"]

    def test_hs_regs_reset_parameters(self, library):
        generated = library.generate("HS_REGS", "hs1", OP_RESET="1'b1")
        assert "OP_RESET = 1'b1" in generated.text

    def test_defaults_table_covers_all_builtins(self, library):
        for component in library.components():
            assert component in DEFAULT_PARAMETERS, component
