"""Tests for the processing-element cost model (caches -> bus traffic)."""

import pytest

from repro.options import presets
from repro.sim.fabric import build_machine
from repro.sim.pe import MISS_GROUP, DataTouch


def fresh_pe(preset_name="GBAVIII", ban="A"):
    machine = build_machine(presets.preset(preset_name, 4))
    return machine, machine.pe_by_ban[ban]


class TestComputeCharging:
    def test_cycles_scale_with_instructions(self):
        machine, pe = fresh_pe()

        def program():
            yield from pe.compute(10_000)

        pe.run(program())
        machine.sim.run()
        expected = int(10_000 * pe.cycles_per_instruction)
        assert pe.stats.compute_cycles == expected

    def test_fractional_cycles_carry(self):
        """Sub-cycle remainders accumulate instead of being dropped."""
        machine, pe = fresh_pe()

        def program():
            for _ in range(10):
                yield from pe.compute(1)  # 0.4 cycles each

        pe.run(program())
        machine.sim.run()
        assert pe.stats.compute_cycles == 4  # 10 x 0.4

    def test_negative_instructions_rejected(self):
        machine, pe = fresh_pe()

        def program():
            yield from pe.compute(-1)

        process = pe.run(program())
        machine.sim.run()
        with pytest.raises(ValueError):
            process.value


class TestInstructionFetchTraffic:
    def test_cold_code_misses_then_warm_hits(self):
        machine, pe = fresh_pe()

        def program():
            # Two passes over the whole code footprint.
            yield from pe.compute(pe.code_footprint_words)
            yield from pe.compute(pe.code_footprint_words)

        pe.run(program())
        machine.sim.run()
        lines = pe.code_footprint_words // pe.icache.line_words
        assert pe.stats.icache_misses == lines  # cold pass only
        assert pe.stats.icache_hits == lines  # warm pass

    def test_miss_traffic_reaches_program_memory(self):
        machine, pe = fresh_pe()
        before = machine.memory(pe.program_device).reads

        def program():
            yield from pe.compute(pe.code_footprint_words)

        pe.run(program())
        machine.sim.run()
        refilled = machine.memory(pe.program_device).reads - before
        assert refilled == pe.code_footprint_words

    def test_ggba_fetches_hit_the_shared_bus(self):
        machine, pe = fresh_pe("GGBA")

        def program():
            yield from pe.compute(4096)

        pe.run(program())
        machine.sim.run()
        shared = machine.segments["GLOBAL_BUS_SUB1"]
        assert shared.stats.transactions > 0


class TestDataStreamTraffic:
    def test_small_buffer_cached_after_first_pass(self):
        machine, pe = fresh_pe()
        touch = DataTouch("SRAM_A", 4096, 512, write=False)

        def program():
            yield from pe.compute(100, [touch])
            yield from pe.compute(100, [touch])

        pe.run(program())
        machine.sim.run()
        lines = 512 // pe.dcache.line_words
        assert pe.stats.dcache_misses == lines
        assert pe.stats.dcache_hits == lines

    def test_writeback_traffic_on_eviction(self):
        machine, pe = fresh_pe()
        capacity_words = pe.dcache.size_bytes // 4
        big = DataTouch("SRAM_A", 0, 2 * capacity_words, write=True)

        def program():
            yield from pe.compute(100, [big])
            yield from pe.compute(100, [big])  # second pass evicts dirty lines

        pe.run(program())
        machine.sim.run()
        memory = machine.memory("SRAM_A")
        assert memory.writes > 0  # write-backs happened
        assert pe.stats.dcache_misses > pe.stats.dcache_hits

    def test_miss_groups_bound_bus_tenures(self):
        machine, pe = fresh_pe()
        lines = 10 * MISS_GROUP
        touch = DataTouch("SRAM_A", 0, lines * pe.dcache.line_words, write=False)

        def program():
            yield from pe.compute(1, [touch])

        pe.run(program())
        machine.sim.run()
        segment = machine.home_segment[pe.name]
        # One tenure per MISS_GROUP misses (plus possible fetch tenures).
        assert segment.stats.transactions <= lines // MISS_GROUP + 5


class TestBusAccessors:
    def test_bus_rw_accounting(self):
        machine, pe = fresh_pe()

        def program():
            yield from pe.bus_write("SRAM_A", 100, [1, 2, 3])
            values = yield from pe.bus_read("SRAM_A", 100, 3)
            return values

        process = pe.run(program())
        machine.sim.run()
        assert process.value == [1, 2, 3]
        assert pe.stats.words_written == 3
        assert pe.stats.words_read == 3
        assert pe.stats.bus_cycles > 0

    def test_stall_counts(self):
        machine, pe = fresh_pe()

        def program():
            yield from pe.stall(123)

        pe.run(program())
        machine.sim.run()
        assert pe.stats.stall_cycles == 123
        assert machine.sim.now == 123

    def test_finished_at_recorded(self):
        machine, pe = fresh_pe()

        def program():
            yield from pe.stall(10)

        pe.run(program())
        machine.sim.run()
        assert pe.finished_at == 10
