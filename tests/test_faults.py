"""Tests for the fault-injection subsystem (repro.faults).

Covers the chaos invariants end to end -- empty-plan bit-identity, plan
determinism, per-kind recovery behaviour, watchdog reclaim, timeout
withdrawal, backend parity -- plus the ``repro chaos`` CLI verb.
"""

import json

import pytest

from repro.cli import main
from repro.faults import (
    BusTimeoutError,
    FaultInjector,
    FaultKind,
    FaultPlan,
    FaultSpec,
    RecoveryPolicy,
    SCENARIOS,
    compile_plan,
    empty_plan,
    install_faults,
)
from repro.faults.chaos import run_chaos, run_chaos_case
from repro.options import presets
from repro.sim.fabric import build_machine


def _machine(arch="GBAVIII", pes=2, kernel="heap"):
    return build_machine(presets.preset(arch, pes), kernel=kernel)


# ---------------------------------------------------------------------------
# Plan compilation
# ---------------------------------------------------------------------------


class TestFaultPlan:
    def test_same_seed_same_plan(self):
        machine_a = _machine()
        machine_b = _machine()
        plan_a = compile_plan(machine_a, SCENARIOS["default"], seed=7)
        plan_b = compile_plan(machine_b, SCENARIOS["default"], seed=7)
        assert plan_a.faults == plan_b.faults
        assert plan_a.describe() == plan_b.describe()

    def test_different_seed_different_plan(self):
        machine = _machine()
        plan_a = compile_plan(machine, SCENARIOS["default"], seed=0)
        plan_b = compile_plan(machine, SCENARIOS["default"], seed=1)
        assert plan_a.faults != plan_b.faults

    def test_sites_are_real(self):
        machine = _machine("BFBA", 4)
        plan = compile_plan(machine, SCENARIOS["heavy"], seed=3)
        segment_names = set(machine.segments)
        arbiter_names = {s.arbiter.name for s in machine.segments.values()}
        fifo_names = set()
        for block in machine.fifo_blocks.values():
            fifo_names.update((block.up.name, block.down.name))
        memory_names = {
            name for name, d in machine.devices.items() if d.kind == "memory"
        }
        for spec in plan.faults:
            if spec.kind == FaultKind.BUS_FLIP:
                assert spec.site in segment_names
            elif spec.kind in (FaultKind.FIFO_DROP, FaultKind.FIFO_DUP):
                assert spec.site in fifo_names
            elif spec.kind in (FaultKind.GRANT_LOST, FaultKind.GRANT_STUCK):
                assert spec.site in arbiter_names
            elif spec.kind == FaultKind.MEM_JITTER:
                assert spec.site in memory_names
            elif spec.kind == FaultKind.PE_CRASH:
                assert spec.site in machine.pes

    def test_grant_lost_needs_contention(self):
        # BFBA local buses each carry one master; a grant_lost planted there
        # would be structurally dormant, so the pool must exclude them.
        from repro.faults.plan import _sites

        sites = _sites(_machine("BFBA", 4))
        assert set(sites["arbiters_contended"]) <= set(sites["arbiters"])

    def test_empty_plan(self):
        plan = empty_plan()
        assert plan.is_empty
        assert plan.by_kind() == {}


# ---------------------------------------------------------------------------
# Per-kind recovery behaviour
# ---------------------------------------------------------------------------


class TestInjectorUnits:
    def test_corrupt_flips_one_bit(self):
        spec = FaultSpec(FaultKind.BUS_FLIP, "seg", at=1, param=5)
        values = [0, 0, 0]
        out = FaultInjector.corrupt(values, spec)
        assert values == [0, 0, 0]  # input untouched
        assert out == [0, 1 << 5, 0]

    def test_memory_jitter_is_accounted(self):
        machine = _machine()
        memory = sorted(
            name for name, d in machine.devices.items() if d.kind == "memory"
        )[0]
        plan = FaultPlan([FaultSpec(FaultKind.MEM_JITTER, memory, at=1, param=9)])
        injector = install_faults(machine, plan)
        assert injector.memory_jitter(memory) == 0  # ordinal 0: dormant
        assert injector.memory_jitter(memory) == 9  # ordinal 1: fires
        assert injector.memory_jitter(memory) == 0  # window passed
        report = injector.resilience_report()
        assert report.injected == 1
        assert report.accounted == 1
        assert report.check() == []

    def test_fifo_drop_goes_on_retransmit_ledger(self):
        machine = _machine("BFBA", 2)
        block = machine.fifo_blocks[sorted(machine.fifo_blocks)[0]]
        fifo = block.up
        plan = FaultPlan([FaultSpec(FaultKind.FIFO_DROP, fifo.name, at=0, param=2)])
        injector = install_faults(machine, plan)
        kept = injector.filter_push(fifo, [1, 2, 3, 4])
        assert kept == [1, 2]
        assert injector.has_fifo_event(fifo)
        [(episode, lost)] = injector._pending_drops[fifo.name]
        assert lost == [3, 4]
        assert episode["outcome"] is None  # open until retransmitted

    def test_fifo_dup_is_discarded_not_queued(self):
        machine = _machine("BFBA", 2)
        fifo = machine.fifo_blocks[sorted(machine.fifo_blocks)[0]].down
        plan = FaultPlan([FaultSpec(FaultKind.FIFO_DUP, fifo.name, at=0, param=1)])
        injector = install_faults(machine, plan)
        kept = injector.filter_push(fifo, [7, 8])
        assert kept == [7, 8]  # dup never enters the FIFO payload
        assert injector.has_fifo_event(fifo)

    def test_stuck_grant_watchdog_reclaims(self):
        machine = _machine()
        segment = machine.segments[sorted(machine.segments)[0]]
        arbiter = segment.arbiter
        plan = FaultPlan(
            [FaultSpec(FaultKind.GRANT_STUCK, arbiter.name, at=10, param=40)]
        )
        injector = install_faults(machine, plan, RecoveryPolicy(watchdog_cycles=50))
        machine.sim.run(until=200)
        assert injector.watchdog_reclaims == 1
        assert arbiter.owner is None  # reclaimed, not wedged
        report = injector.resilience_report()
        assert report.recovered == 1
        assert report.check() == []

    def test_lost_grant_is_redelivered(self):
        machine = _machine()
        segment = machine.segments[sorted(machine.segments)[0]]
        arbiter = segment.arbiter
        plan = FaultPlan([FaultSpec(FaultKind.GRANT_LOST, arbiter.name, at=0)])
        injector = install_faults(machine, plan, RecoveryPolicy(watchdog_cycles=20))
        sim = machine.sim
        granted_at = []

        def hog():
            assert arbiter.try_claim("hog")
            yield 5
            arbiter.release("hog")

        def victim():
            grant = arbiter.request("victim")
            yield grant
            granted_at.append(sim.now)
            arbiter.release("victim")

        sim.process(hog(), "hog")
        sim.process(victim(), "victim")
        sim.run()
        # Dispatch at cycle 5 lost its pulse; the watchdog redelivered it.
        assert granted_at == [25]
        assert injector.grant_redeliveries == 1
        assert injector.resilience_report().recovered == 1

    def test_timeout_exhaustion_withdraws_the_request(self):
        machine = _machine()
        segment = machine.segments[sorted(machine.segments)[0]]
        arbiter = segment.arbiter
        # Guard the segment via a stuck-grant fault that never fires.
        plan = FaultPlan(
            [FaultSpec(FaultKind.GRANT_STUCK, arbiter.name, at=10**9, param=1)]
        )
        policy = RecoveryPolicy(timeout_cycles=2, max_escalations=3)
        injector = install_faults(machine, plan, policy)
        assert segment.name in injector.guarded_segments
        sim = machine.sim
        outcome = []

        def victim():
            try:
                yield from injector.acquire(segment, "victim")
            except BusTimeoutError:
                outcome.append("timeout")
            else:  # pragma: no cover - the hog never releases
                outcome.append("granted")

        assert arbiter.try_claim("hog")  # wedge the bus forever
        sim.process(victim(), "victim")
        sim.run(until=1000)
        assert outcome == ["timeout"]
        assert injector.timeouts == policy.max_escalations
        # The withdrawn request must not linger: a posthumous dispatch to a
        # dead master would wedge the segment for every later requester.
        assert arbiter.pending_count == 0

    def test_pe_crash_restart_flushes_caches(self):
        machine = _machine()
        pe_name = sorted(machine.pes)[0]
        plan = FaultPlan([FaultSpec(FaultKind.PE_CRASH, pe_name, at=0, param=30)])
        injector = install_faults(machine, plan)
        assert injector.crash_due(pe_name)
        assert not injector.crash_due(pe_name)  # one-shot window


# ---------------------------------------------------------------------------
# End-to-end chaos invariants
# ---------------------------------------------------------------------------


class TestChaosInvariants:
    @pytest.mark.parametrize("backend", ["heap", "wheel"])
    def test_empty_plan_is_bit_identical(self, backend):
        case = ("GBAVIII", "FPA", backend, "baseline")
        baseline = run_chaos_case(case, packets=2)
        empty = run_chaos_case(("GBAVIII", "FPA", backend, "empty"), packets=2)
        assert empty["cycles"] == baseline["cycles"]
        assert empty["throughput_mbps"] == baseline["throughput_mbps"]
        assert empty["resilience"]["injected"] == 0

    def test_faulted_outcomes_identical_across_backends(self):
        heap = run_chaos_case(("BFBA", "PPA", "heap", "faulted"), packets=2)
        wheel = run_chaos_case(("BFBA", "PPA", "wheel", "faulted"), packets=2)
        assert heap["cycles"] == wheel["cycles"]
        heap_res = dict(heap["resilience"], name="")
        wheel_res = dict(wheel["resilience"], name="")
        assert heap_res == wheel_res
        assert heap["resilience"]["injected"] > 0

    def test_full_smoke_sweep_holds_all_invariants(self):
        summary = run_chaos(seed=0, scenario="smoke", packets=2, jobs=1)
        assert summary["failures"] == []
        assert summary["ok"]
        for row in summary["cases"]:
            if row["mode"] == "faulted":
                resilience = row["resilience"]
                assert resilience["unaccounted"] == 0
                assert (
                    resilience["injected"]
                    == resilience["recovered"]
                    + resilience["residual"]
                    + resilience["accounted"]
                )

    def test_unknown_scenario_is_rejected(self):
        with pytest.raises(ValueError, match="unknown scenario"):
            run_chaos(scenario="nope")


# ---------------------------------------------------------------------------
# CLI
# ---------------------------------------------------------------------------


class TestChaosCli:
    def test_chaos_smoke_writes_artifact(self, tmp_path, capsys):
        out = tmp_path / "chaos.json"
        code = main(
            [
                "chaos",
                "--smoke",
                "--arch",
                "GBAVIII",
                "--backend",
                "heap",
                "--packets",
                "2",
                "-o",
                str(out),
            ]
        )
        assert code == 0
        captured = capsys.readouterr()
        assert "all invariants hold" in captured.out
        summary = json.loads(out.read_text())
        assert summary["ok"]
        assert summary["architectures"] == ["GBAVIII"]
