"""Tests for Bi-FIFO blocks and threshold interrupts."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.sim.fifo import BiFifo, FifoEmptyError, FifoFullError, HardwareFifo
from repro.sim.kernel import Simulator


@pytest.fixture
def sim():
    return Simulator()


class TestHardwareFifo:
    def test_push_pop_order(self, sim):
        fifo = HardwareFifo(sim, "f", 16)
        fifo.push([1, 2, 3])
        assert fifo.pop(3) == [1, 2, 3]

    def test_counts(self, sim):
        fifo = HardwareFifo(sim, "f", 16)
        fifo.push([1, 2])
        assert fifo.count == 2 and fifo.space == 14
        fifo.pop(1)
        assert fifo.count == 1

    def test_overflow_raises(self, sim):
        fifo = HardwareFifo(sim, "f", 2)
        with pytest.raises(FifoFullError):
            fifo.push([1, 2, 3])

    def test_underflow_raises(self, sim):
        fifo = HardwareFifo(sim, "f", 2)
        with pytest.raises(FifoEmptyError):
            fifo.pop(1)

    def test_word_masking(self, sim):
        fifo = HardwareFifo(sim, "f", 4)
        fifo.push([2**40 + 5])
        assert fifo.pop(1) == [5]

    def test_threshold_interrupt_fires_once_per_crossing(self, sim):
        fifo = HardwareFifo(sim, "f", 32)
        hits = []
        fifo.on_threshold = lambda f: hits.append(f.count)
        fifo.set_threshold(4)
        fifo.push([0, 1, 2])
        assert hits == []
        fifo.push([3])
        assert hits == [4]
        fifo.push([4, 5])  # still above threshold: no re-fire
        assert hits == [4]

    def test_threshold_rearms_after_drain(self, sim):
        fifo = HardwareFifo(sim, "f", 32)
        hits = []
        fifo.on_threshold = lambda f: hits.append(sim.now)
        fifo.set_threshold(2)
        fifo.push([1, 2])
        fifo.pop(2)
        fifo.push([3, 4])
        assert len(hits) == 2
        assert fifo.interrupts_raised == 2

    def test_zero_threshold_disables(self, sim):
        fifo = HardwareFifo(sim, "f", 8)
        hits = []
        fifo.on_threshold = lambda f: hits.append(1)
        fifo.set_threshold(0)
        fifo.push(list(range(8)))
        assert hits == []

    def test_threshold_bounds(self, sim):
        fifo = HardwareFifo(sim, "f", 8)
        with pytest.raises(ValueError):
            fifo.set_threshold(9)
        with pytest.raises(ValueError):
            fifo.set_threshold(-1)

    def test_wait_data_event(self, sim):
        fifo = HardwareFifo(sim, "f", 8)
        event = fifo.wait_data()
        assert not event.triggered
        fifo.push([1])
        assert event.triggered

    def test_wait_space_event(self, sim):
        fifo = HardwareFifo(sim, "f", 1)
        fifo.push([1])
        event = fifo.wait_space()
        assert not event.triggered
        fifo.pop(1)
        assert event.triggered

    def test_flags(self, sim):
        fifo = HardwareFifo(sim, "f", 2)
        assert fifo.is_empty and not fifo.is_full
        fifo.push([1, 2])
        assert fifo.is_full and not fifo.is_empty

    def test_positive_depth_required(self, sim):
        with pytest.raises(ValueError):
            HardwareFifo(sim, "f", 0)

    @given(st.lists(st.integers(min_value=0, max_value=2**32 - 1), min_size=1, max_size=32))
    @settings(max_examples=30, deadline=None)
    def test_fifo_order_property(self, values):
        sim = Simulator()
        fifo = HardwareFifo(sim, "f", 64)
        fifo.push(values)
        assert fifo.pop(len(values)) == values


class TestBiFifo:
    def test_directions_are_independent(self, sim):
        block = BiFifo(sim, "b", 8)
        block.up.push([1])
        block.down.push([2])
        assert block.up.pop(1) == [1]
        assert block.down.pop(1) == [2]

    def test_direction_selector(self, sim):
        block = BiFifo(sim, "b", 8)
        assert block.direction(True) is block.up
        assert block.direction(False) is block.down
