"""MachineBuilder: one composition point for kernels, tracers, monitors,
fault injectors.

The builder must be *behaviour-preserving*: for every combination of
{tracer, monitor, faults} x {heap, wheel, compiled}, a machine composed
through :class:`repro.sim.fabric.MachineBuilder` must produce RunReport
telemetry identical to the legacy path (``build_machine`` + manual
``attach_*``/``install_faults`` calls).  ``build_machine`` itself stays as
a thin keyword wrapper over the builder and is tested as such.

The compiled backend makes the ordering rules observable: hooks force the
generic instrumented fabric paths (no specialization), while a hook-free
compiled build installs specialized dispatch -- both are pinned here.
"""

import pytest

from repro.apps.ofdm import OfdmParameters, run_ofdm
from repro.faults import RecoveryPolicy, SMOKE_SCENARIO, compile_plan, install_faults
from repro.obs import Observability
from repro.options import presets
from repro.sim.fabric import Machine, MachineBuilder, build_machine
from repro.sim.kernel import KERNEL_BACKENDS, Simulator

BACKENDS = list(KERNEL_BACKENDS)
HOOKS = ["none", "tracer", "monitor", "faults", "all"]


def _spec():
    return presets.preset("BFBA", 4)


def _smoke_plan():
    # Plans bind fault sites by *name*, so one compiled against a throwaway
    # machine of the same spec drives any other machine built from it.
    scratch = build_machine(_spec())
    return compile_plan(scratch, SMOKE_SCENARIO, seed=3)


def _run_and_report(machine, hooks):
    result = run_ofdm(machine, "PPA", OfdmParameters(packets=1))
    report = machine.run_report(name="builder-parity")
    summary = dict(vars(report))
    summary["throughput_mbps"] = result.throughput_mbps
    summary["app_cycles"] = result.cycles
    if machine._faults is not None:
        fault_report = machine._faults.resilience_report()
        summary["faults"] = (fault_report.injected, fault_report.recovered)
        assert fault_report.check() == []
    if machine._monitor is not None:
        findings = machine._monitor.finalize(cycle=machine.sim.now)
        assert findings == []
    return summary


def _legacy_machine(kernel, hooks, plan):
    machine = build_machine(_spec(), kernel=kernel)
    if hooks in ("tracer", "all"):
        machine.attach_observability(Observability())
    if hooks in ("monitor", "all"):
        machine.attach_monitors()
    if hooks in ("faults", "all"):
        install_faults(machine, plan, RecoveryPolicy())
    return machine


def _built_machine(kernel, hooks, plan):
    builder = MachineBuilder(_spec()).with_kernel(kernel)
    if hooks in ("tracer", "all"):
        builder.with_observability(Observability())
    if hooks in ("monitor", "all"):
        builder.with_monitors()
    if hooks in ("faults", "all"):
        builder.with_faults(plan, RecoveryPolicy())
    return builder.build()


class TestBuilderMatchesLegacyPath:
    @pytest.mark.parametrize("kernel", BACKENDS)
    @pytest.mark.parametrize("hooks", HOOKS)
    def test_identical_run_report_telemetry(self, kernel, hooks):
        plan = _smoke_plan() if hooks in ("faults", "all") else None
        legacy = _run_and_report(_legacy_machine(kernel, hooks, plan), hooks)
        built = _run_and_report(_built_machine(kernel, hooks, plan), hooks)
        assert built == legacy


class TestBuilderComposition:
    def test_with_sim_uses_given_simulator(self):
        sim = Simulator(kernel="wheel")
        machine = MachineBuilder(_spec()).with_sim(sim).build()
        assert machine.sim is sim

    def test_fluent_calls_return_builder(self):
        builder = MachineBuilder(_spec())
        assert builder.with_kernel("heap") is builder
        assert builder.with_trace_hsregs() is builder
        assert builder.with_cycles_per_instruction(0.5) is builder
        assert builder.with_arbiter_policy(None) is builder
        assert builder.without_specialization() is builder

    def test_compiled_without_hooks_specializes(self):
        machine = MachineBuilder(_spec()).with_kernel("compiled").build()
        assert machine._specialized
        assert "transaction" in machine.__dict__
        assert machine._specialized_source is not None

    @pytest.mark.parametrize("hooks", ["tracer", "monitor", "faults"])
    def test_compiled_with_hooks_stays_generic(self, hooks):
        plan = _smoke_plan() if hooks == "faults" else None
        machine = _built_machine("compiled", hooks, plan)
        assert not machine._specialized
        assert "transaction" not in machine.__dict__

    def test_without_specialization_opts_out(self):
        machine = (
            MachineBuilder(_spec())
            .with_kernel("compiled")
            .without_specialization()
            .build()
        )
        assert not machine._specialized

    def test_non_compiled_backends_never_specialize(self):
        for kernel in ("heap", "wheel"):
            machine = MachineBuilder(_spec()).with_kernel(kernel).build()
            assert not machine._specialized


class TestBuildMachineBackCompat:
    """The legacy keyword entry point stays a thin wrapper of the builder."""

    def test_returns_machine(self):
        machine = build_machine(_spec())
        assert isinstance(machine, Machine)
        assert machine.sim.kernel_name == "heap"

    def test_kernel_kwarg_forwards(self):
        for kernel in BACKENDS:
            assert build_machine(_spec(), kernel=kernel).sim.kernel_name == kernel

    def test_sim_kwarg_forwards(self):
        sim = Simulator(kernel="heap")
        assert build_machine(_spec(), sim=sim).sim is sim

    def test_elaboration_kwargs_match_builder(self):
        legacy = build_machine(
            _spec(), trace_hsregs=True, cycles_per_instruction=0.5,
            arbiter_policy="round_robin",
        )
        built = (
            MachineBuilder(_spec())
            .with_trace_hsregs()
            .with_cycles_per_instruction(0.5)
            .with_arbiter_policy("round_robin")
            .build()
        )
        assert {
            name: type(segment.arbiter).__name__
            for name, segment in legacy.segments.items()
        } == {
            name: type(segment.arbiter).__name__
            for name, segment in built.segments.items()
        }
        for ban, block in legacy.hs_blocks.items():
            assert block.trace_enabled and built.hs_blocks[ban].trace_enabled

    def test_compiled_kwarg_specializes_like_builder(self):
        machine = build_machine(_spec(), kernel="compiled")
        assert machine._specialized
