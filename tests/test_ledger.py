"""Run ledger: content-addressed records, queries, and regression gates.

Pins the fleet-telemetry contracts of ``repro.obs.ledger`` and
``repro.obs.query``:

* **determinism** -- the same options + seed + backend + revision hash to
  the same record identity; everything nondeterministic (timestamp, host,
  pid, wall seconds) lives in the non-hashed envelope;
* **storage** -- append-only ``records.jsonl`` plus a ``{hash, verb,
  offset}`` index supporting prefix lookup by seek;
* **query** -- filter/aggregate by verb x backend x arch, field-by-field
  body diffs, and CI regression gates over ``benchmarks/baselines.json``;
* **round trip** -- the CLI verbs write records a later ``repro report``
  reads back, and ``--check`` exits non-zero on an injected regression.
"""

import json
import os

import pytest

from repro.cli import main
from repro.obs.ledger import (
    RECORD_VERSION,
    Ledger,
    build_record,
    canonical_json,
    content_hash,
    git_revision,
    options_hash,
    scrub_timings,
)
from repro.obs.query import (
    aggregate_records,
    check_regressions,
    diff_bodies,
    filter_records,
)
from repro.obs.validate import validate_ledger_records


SUMMARY = {
    "app": "ofdm",
    "cycles": 41992,
    "wall_seconds": 0.25,
    "nested": {"seconds": 1.5, "packets": 4},
}


class TestHashing:
    def test_scrub_timings_removes_keys_at_any_depth(self):
        scrubbed = scrub_timings(SUMMARY)
        assert scrubbed == {"app": "ofdm", "cycles": 41992, "nested": {"packets": 4}}
        # Deep copy: the input is untouched.
        assert "wall_seconds" in SUMMARY

    def test_canonical_json_is_order_independent(self):
        assert canonical_json({"b": 1, "a": [2, 3]}) == canonical_json(
            {"a": [2, 3], "b": 1}
        )
        assert content_hash({"b": 1, "a": 2}) == content_hash({"a": 2, "b": 1})

    def test_canonical_json_rejects_nan(self):
        with pytest.raises(ValueError):
            canonical_json({"x": float("nan")})

    def test_options_hash_is_short_and_stable(self):
        first = options_hash({"arch": "GBAVIII", "pes": 4})
        assert len(first) == 12
        assert first == options_hash({"pes": 4, "arch": "GBAVIII"})
        assert first != options_hash({"arch": "GBAVIII", "pes": 8})


class TestRecordDeterminism:
    OPTIONS = {"arch": "GBAVIII", "pes": 4, "kernel": "compiled", "seed": 7}

    def build(self, **overrides):
        kwargs = dict(
            options=self.OPTIONS,
            backend="compiled",
            arch="GBAVIII",
            summary=SUMMARY,
            sim_cycles=41992,
            rev="abc1234",
        )
        kwargs.update(overrides)
        return build_record("simulate", **kwargs)

    def test_same_inputs_same_hash(self):
        first = self.build(wall_seconds=0.1)
        second = self.build(wall_seconds=99.9)
        assert first["hash"] == second["hash"]
        assert first["body"] == second["body"]

    def test_envelope_holds_the_nondeterminism(self):
        record = self.build(wall_seconds=0.125)
        envelope = record["envelope"]
        assert envelope["wall_seconds"] == 0.125
        assert envelope["timestamp"]
        assert envelope["host"]
        assert envelope["pid"] == os.getpid()
        # Scrubbed timings are preserved as flat dotted paths.
        assert envelope["measurements"]["wall_seconds"] == 0.25
        assert envelope["measurements"]["nested.seconds"] == 1.5
        # ... and none of them are in the hashed body.
        assert "wall_seconds" not in canonical_json(record["body"])

    def test_different_inputs_different_hash(self):
        base = self.build()
        assert base["hash"] != self.build(backend="heap")["hash"]
        assert (
            base["hash"]
            != self.build(options=dict(self.OPTIONS, seed=8))["hash"]
        )
        assert base["hash"] != self.build(rev="fff0000")["hash"]

    def test_hash_matches_body_and_version(self):
        record = self.build()
        assert record["version"] == RECORD_VERSION
        assert record["hash"] == content_hash(record["body"])
        assert validate_ledger_records([record]) == []

    def test_git_revision_in_repo_and_outside(self, tmp_path):
        here = git_revision(os.path.dirname(os.path.dirname(__file__)))
        assert here != "unknown" and len(here) >= 7
        assert git_revision(str(tmp_path)) == "unknown"


class TestLedgerStorage:
    def test_append_find_roundtrip(self, tmp_path):
        ledger = Ledger(str(tmp_path / "led"))
        assert not ledger.exists
        hashes = [
            ledger.write("simulate", options={"pes": n}, backend="heap", arch="BFBA")
            for n in (2, 4, 8)
        ]
        assert ledger.exists
        assert len(ledger.records()) == 3
        assert [e["verb"] for e in ledger.index()] == ["simulate"] * 3
        found = ledger.find(hashes[1][:12])
        assert found["hash"] == hashes[1]
        assert found["body"]["options"] == {"pes": 4}
        assert ledger.find("0" * 64) is None

    def test_ambiguous_prefix_raises(self, tmp_path):
        ledger = Ledger(str(tmp_path / "led"))
        ledger.write("simulate", options={"pes": 2})
        ledger.write("simulate", options={"pes": 4})
        with pytest.raises(LookupError, match="ambiguous"):
            ledger.find("")

    def test_identical_rerun_same_hash_last_write_wins(self, tmp_path):
        ledger = Ledger(str(tmp_path / "led"))
        first = ledger.write("simulate", options={"pes": 4}, rev="abc1234")
        second = ledger.write("simulate", options={"pes": 4}, rev="abc1234")
        assert first == second
        assert len(ledger.records()) == 2
        assert ledger.find(first[:12])["hash"] == first

    def test_validate_accepts_ledger_and_rejects_tampering(self, tmp_path):
        ledger = Ledger(str(tmp_path / "led"))
        ledger.write("simulate", options={"pes": 4})
        records = ledger.records()
        assert validate_ledger_records(records) == []
        records[0]["body"]["sim_cycles"] = 12345
        failures = validate_ledger_records(records)
        assert failures and "hash" in failures[0]
        records[0]["version"] = 99
        failures = validate_ledger_records(records)
        assert failures and "version" in failures[0]


def _record(verb, backend="heap", arch="BFBA", summary=None, **kwargs):
    return build_record(
        verb,
        options={"arch": arch, "backend": backend},
        backend=backend,
        arch=arch,
        summary=summary,
        rev="abc1234",
        **kwargs,
    )


class TestQuery:
    def records(self):
        return [
            _record("simulate", "heap", "BFBA", sim_cycles=100),
            _record("simulate", "compiled", "BFBA", sim_cycles=100),
            _record("simulate", "compiled", "GBAVIII", sim_cycles=200),
            _record(
                "chaos",
                ["heap", "wheel"],
                ["BFBA", "HYBRID"],
                summary={
                    "backends": ["heap", "wheel"],
                    "architectures": ["BFBA", "HYBRID"],
                    "ok": True,
                    "failures": [],
                },
            ),
        ]

    def test_filter_by_verb_backend_arch(self):
        records = self.records()
        assert len(filter_records(records, verb="simulate")) == 3
        assert len(filter_records(records, backend="compiled")) == 2
        # Multi-valued fields match both the body lists and the summary's
        # plural keys (chaos/verify sweeps).
        assert len(filter_records(records, backend="wheel")) == 1
        assert len(filter_records(records, arch="HYBRID")) == 1
        assert len(filter_records(records, verb="simulate", arch="GBAVIII")) == 1
        assert filter_records(records, rev="fff0000") == []

    def test_aggregate_groups_and_counts(self):
        records = self.records() + [_record("simulate", "heap", "BFBA", sim_cycles=100)]
        rows = aggregate_records(records)
        by_key = {(r["verb"], r["arch"], r["backend"]): r for r in rows}
        heap_row = by_key[("simulate", "BFBA", "heap")]
        assert heap_row["runs"] == 2
        assert heap_row["distinct_hashes"] == 1  # identical re-run
        assert heap_row["sim_cycles"] == 100
        assert len(heap_row["last_hash"]) == 12
        chaos_row = by_key[("chaos", "BFBA,HYBRID", "heap,wheel")]
        assert chaos_row["runs"] == 1

    def test_diff_bodies_reports_dotted_paths(self):
        a = _record("simulate", "heap", "BFBA", sim_cycles=100)
        b = _record("simulate", "compiled", "BFBA", sim_cycles=120)
        diffs = dict((path, (x, y)) for path, x, y in diff_bodies(a, b))
        assert diffs["backend"] == ("heap", "compiled")
        assert diffs["sim_cycles"] == (100, 120)
        assert "options.backend" in diffs
        assert "options_hash" in diffs
        assert diff_bodies(a, a) == []


class TestRegressionGates:
    BASELINES = {
        "gates": {"ci_regression_tolerance": 0.2, "counters_overhead_max": 0.15},
        "ci_floor": {"compiled": {"int_yield_events_per_sec": 1000000.0}},
    }

    def test_clean_ledger_has_no_findings(self):
        records = [
            _record("chaos", summary={"ok": True, "failures": []}),
            _record("verify", summary={"ok": True, "failures": []}),
        ]
        assert check_regressions(records, self.BASELINES) == []

    def test_failed_chaos_flagged(self):
        records = [
            _record(
                "chaos", summary={"ok": False, "failures": ["BFBA/heap: deadlock"]}
            )
        ]
        findings = check_regressions(records, self.BASELINES)
        assert len(findings) == 1
        assert findings[0]["verb"] == "chaos"
        assert findings[0]["field"] == "summary.ok"
        assert "deadlock" in findings[0]["message"]

    def bench_record(self, events_per_sec, procs=64, overhead=0.01, smoke=False):
        return _record(
            "bench",
            backend="compiled",
            arch=None,
            summary={
                "smoke": smoke,
                "failures": [],
                "kernel": {
                    "compiled": {
                        "int_yield": {
                            "procs": procs,
                            "events": 1000,
                            "events_per_sec": events_per_sec,
                        }
                    }
                },
                "counters": {
                    "kernel": "compiled",
                    "bit_identical": True,
                    "stayed_specialized": True,
                    "overhead_fraction": overhead,
                },
            },
        )

    def test_bench_above_floor_passes(self):
        record = self.bench_record(events_per_sec=2000000.0)
        assert check_regressions([record], self.BASELINES) == []

    def test_bench_below_floor_flagged(self):
        record = self.bench_record(events_per_sec=500000.0)
        findings = check_regressions([record], self.BASELINES)
        assert len(findings) == 1
        assert findings[0]["field"] == "kernel.compiled.int_yield.events_per_sec"
        assert findings[0]["value"] == 500000.0

    def test_smoke_scale_sample_not_gated(self):
        record = self.bench_record(events_per_sec=1.0, procs=8)
        assert check_regressions([record], self.BASELINES) == []

    def test_counter_bit_identity_always_gated(self):
        record = self.bench_record(events_per_sec=2000000.0, smoke=True)
        record["body"]["summary"]["counters"]["bit_identical"] = False
        record["hash"] = content_hash(record["body"])
        findings = check_regressions([record], self.BASELINES)
        assert [f["field"] for f in findings] == ["counters.bit_identical"]

    def test_counter_overhead_gated_outside_smoke(self):
        over = self.bench_record(events_per_sec=2000000.0, overhead=0.5)
        findings = check_regressions([over], self.BASELINES)
        assert [f["field"] for f in findings] == ["counters.overhead_fraction"]
        smoky = self.bench_record(events_per_sec=2000000.0, overhead=0.5, smoke=True)
        assert check_regressions([smoky], self.BASELINES) == []


class TestCliRoundTrip:
    """Four CLI verbs write a ledger that ``repro report`` reads back."""

    @pytest.fixture(scope="class")
    def ledger_dir(self, tmp_path_factory):
        root = str(tmp_path_factory.mktemp("ledger") / "led")
        argv = ["--ledger", root]
        assert (
            main(
                [
                    "simulate",
                    "--preset",
                    "GBAVIII",
                    "--pes",
                    "4",
                    "--app",
                    "ofdm",
                    "--packets",
                    "2",
                    "--kernel",
                    "compiled",
                ]
                + argv
            )
            == 0
        )
        assert main(["compile", "--preset", "GBAVIII", "--pes", "4"] + argv) == 0
        assert main(["table", "5"] + argv) == 0
        assert (
            main(
                [
                    "verify",
                    "--smoke",
                    "--packets",
                    "1",
                    "--backend",
                    "heap",
                ]
                + argv
            )
            == 0
        )
        return root

    def test_four_verbs_recorded_and_valid(self, ledger_dir):
        ledger = Ledger(ledger_dir)
        records = ledger.records()
        assert {r["body"]["verb"] for r in records} == {
            "simulate",
            "compile",
            "table",
            "verify",
        }
        assert validate_ledger_records(records) == []
        assert len(ledger.index()) == len(records)

    def test_report_aggregate_and_json(self, ledger_dir, capsys):
        assert main(["report", "--ledger", ledger_dir]) == 0
        assert "simulate" in capsys.readouterr().out
        assert main(["report", "--ledger", ledger_dir, "--json"]) == 0
        rows = json.loads(capsys.readouterr().out)["groups"]
        assert any(row["verb"] == "table" for row in rows)

    def test_report_check_passes_then_fails_on_injected_regression(
        self, ledger_dir, capsys
    ):
        assert main(["report", "--ledger", ledger_dir, "--check"]) == 0
        capsys.readouterr()
        Ledger(ledger_dir).write(
            "chaos",
            options={"scenario": "smoke"},
            summary={"ok": False, "failures": ["injected: deadlock"]},
        )
        assert main(["report", "--ledger", ledger_dir, "--check"]) == 1
        assert "injected" in capsys.readouterr().out

    def test_report_diff_two_runs(self, ledger_dir, capsys):
        ledger = Ledger(ledger_dir)
        by_verb = {}
        for record in ledger.records():
            by_verb.setdefault(record["body"]["verb"], record["hash"])
        a = by_verb["simulate"]
        b = by_verb["compile"]
        assert main(["report", "--ledger", ledger_dir, "--diff", a[:12], b[:12]]) == 0
        out = capsys.readouterr().out
        assert "verb" in out

    def test_report_without_ledger_exits_2(self, tmp_path, capsys):
        assert main(["report", "--ledger", str(tmp_path / "absent")]) == 2
        assert "no ledger" in capsys.readouterr().err.lower()

    def test_no_ledger_flag_suppresses_writes(self, tmp_path, monkeypatch):
        monkeypatch.chdir(tmp_path)
        assert (
            main(
                [
                    "simulate",
                    "--preset",
                    "GGBA",
                    "--app",
                    "database",
                    "--no-ledger",
                ]
            )
            == 0
        )
        assert not os.path.exists(str(tmp_path / ".repro"))
