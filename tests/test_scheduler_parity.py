"""Differential tests: heap vs timing-wheel vs compiled scheduler backends.

The wheel backend (``repro.sim.kernel.WheelSimulator``) and the gen-3
compiled backend (``repro.sim.compiled.CompiledSimulator``) must be
observationally identical to the heap backend: same event firing order,
same process wake order, same final clock, same event accounting.  These
tests execute the *same* workload on every backend and compare execution
logs, concentrating on the places where bucket draining -- and the
compiled backend's direct entries (bare ``(process,)`` tuples with no
proxy event) -- could plausibly diverge from the heap's ``(when, seq)``
order:

* same-cycle tie-breaks between events scheduled through different paths
  (int fast path, ``timeout()``, composite re-arms, interrupts);
* the ``WHEEL_SIZE`` boundary, where a delay moves between the wheel and
  the overflow heap (and a compiled direct entry falls back to a proxy);
* overflow events landing on the same cycle as bucket events (the
  overflow-drains-first rule);
* ``Interrupt`` delivered while the victim waits on a pooled timeout (for
  the compiled backend: a *stale direct entry* that must still deliver a
  queued interrupt when it drains);
* request withdrawal via ``Arbiter.cancel`` mid-contention;
* ``run(until=...)`` deadline splits mid-stream.
"""

import random

import pytest

from repro.sim.kernel import (
    KERNEL_BACKENDS,
    WHEEL_SIZE,
    Interrupt,
    Simulator,
    WheelSimulator,
    default_kernel,
    set_default_kernel,
    total_events_processed,
)

pytestmark = []

BACKENDS = list(KERNEL_BACKENDS)


# ---------------------------------------------------------------------------
# Seeded pseudo-random workloads
# ---------------------------------------------------------------------------

def _random_workload(sim, log, seed, procs=12, steps=10):
    """Spawn ``procs`` processes doing a seeded mix of every yield kind.

    Each process appends ``(cycle, name, step, action)`` to ``log`` at every
    resume -- the cross-backend comparison key.  The RNG drives *structure*
    only (which action, which delay); both backends replay the identical
    structure because the seed is shared.
    """
    rng = random.Random(seed)
    # Pre-plan the actions so the RNG is never consumed inside a process
    # (process interleaving must not perturb the plan).
    plans = []
    for index in range(procs):
        plan = []
        for _ in range(steps):
            plan.append(
                (
                    rng.choice(
                        ["int", "int", "int", "big", "timeout", "any", "all", "zero"]
                    ),
                    rng.randint(1, 9),
                    rng.randint(WHEEL_SIZE - 2, WHEEL_SIZE + 2),
                )
            )
        plans.append(plan)

    handles = {}

    def body(name, plan):
        for step, (action, small, big) in enumerate(plan):
            if action == "int":
                yield small
            elif action == "big":
                yield big
            elif action == "timeout":
                yield sim.timeout(small, value=name)
            elif action == "zero":
                yield sim.timeout(0)
            elif action == "any":
                yield sim.any_of([sim.timeout(small), sim.timeout(small + 3)])
            elif action == "all":
                yield sim.all_of([sim.timeout(small), sim.timeout(2)])
            log.append((sim.now, name, step, action))

    def interrupter(victims):
        for round_index in range(4):
            yield 7
            for victim in victims:
                if victim.is_alive():
                    victim.interrupt("poke-%d" % round_index)
                    log.append((sim.now, "interrupter", round_index, "poke"))
                    break

    def sleeper(name):
        woken = 0
        for _attempt in range(6):  # bounded: interrupts may stop coming
            try:
                yield 50
            except Interrupt as exc:
                woken += 1
                log.append((sim.now, name, woken, str(exc.cause)))
            if woken >= 3:
                break
        log.append((sim.now, name, woken, "done"))

    for index, plan in enumerate(plans):
        handles[index] = sim.process(body("p%d" % index, plan), name="p%d" % index)
    sleepers = [sim.process(sleeper("s%d" % i), name="s%d" % i) for i in range(2)]
    sim.process(interrupter(sleepers), name="interrupter")

    def joiner():
        yield handles[0]
        yield handles[procs - 1]
        log.append((sim.now, "joiner", 0, "joined"))

    sim.process(joiner(), name="joiner")


def _run_backend(kernel, seed, until=None):
    sim = Simulator(kernel=kernel)
    log = []
    _random_workload(sim, log, seed)
    sim.run(until=until)
    return log, sim.now, sim.events_processed


class TestRandomWorkloadParity:
    @pytest.mark.parametrize("seed", range(8))
    def test_logs_identical(self, seed):
        heap = _run_backend("heap", seed)
        for kernel in BACKENDS[1:]:
            other = _run_backend(kernel, seed)
            assert heap[0] == other[0], (
                "wake order diverged for seed %d on %s" % (seed, kernel)
            )
            assert heap[1] == other[1]  # final clock
            assert heap[2] == other[2]  # events_processed

    @pytest.mark.parametrize("kernel", ["wheel", "compiled"])
    @pytest.mark.parametrize("seed", range(4))
    def test_deadline_split_identical(self, seed, kernel):
        """Stopping at a deadline and resuming must not perturb the order."""
        whole = _run_backend("heap", seed)

        sim = Simulator(kernel=kernel)
        log = []
        _random_workload(sim, log, seed)
        sim.run(until=40)
        assert sim.now == 40
        sim.run(until=95)
        assert sim.now == 95
        sim.run()
        assert log == whole[0]
        assert sim.now == whole[1]
        assert sim.events_processed == whole[2]


# ---------------------------------------------------------------------------
# Targeted edge cases
# ---------------------------------------------------------------------------

class TestSameCycleTieBreak:
    def test_mixed_scheduling_paths_keep_seq_order(self):
        """Events reaching one cycle through int yields, timeouts, and event
        callbacks must fire in scheduling order on both backends."""

        def run(kernel):
            sim = Simulator(kernel=kernel)
            order = []

            def via_int(name, delay):
                yield delay
                order.append(name)

            def via_timeout(name, delay):
                yield sim.timeout(delay)
                order.append(name)

            # All land on cycle 6, scheduled in interleaved order.
            sim.process(via_int("a", 6))
            sim.process(via_timeout("b", 6))
            sim.process(via_int("c", 6))
            sim.process(via_timeout("d", 6))
            sim.run()
            return order

        reference = run("heap")
        for kernel in BACKENDS[1:]:
            assert run(kernel) == reference, kernel

    def test_overflow_meets_bucket_on_same_cycle(self):
        """An event scheduled far ahead (overflow heap) fires before events
        scheduled later onto the same cycle (wheel bucket) -- matching the
        heap's global sequence order."""

        def run(kernel):
            sim = Simulator(kernel=kernel)
            order = []

            def far(name):
                # Scheduled at cycle 0 for cycle WHEEL_SIZE + 10: overflow.
                yield WHEEL_SIZE + 10
                order.append(name)

            def late(name):
                # Re-scheduled at WHEEL_SIZE + 5 for WHEEL_SIZE + 10: bucket.
                yield WHEEL_SIZE + 5
                yield 5
                order.append(name)

            sim.process(far("overflow-first"))
            sim.process(late("bucket-second"))
            sim.process(far("overflow-third"))
            sim.run()
            assert sim.now == WHEEL_SIZE + 10
            return order

        heap_order = run("heap")
        assert heap_order == ["overflow-first", "overflow-third", "bucket-second"]
        for kernel in BACKENDS[1:]:
            assert run(kernel) == heap_order, kernel

    @pytest.mark.parametrize(
        "delay", [WHEEL_SIZE - 1, WHEEL_SIZE, WHEEL_SIZE + 1]
    )
    def test_wheel_size_boundary(self, delay):
        """Delays straddling the wheel/overflow boundary behave alike."""

        def run(kernel):
            sim = Simulator(kernel=kernel)
            order = []

            def worker(name, d):
                yield d
                order.append((sim.now, name))
                yield d
                order.append((sim.now, name))

            sim.process(worker("x", delay))
            sim.process(worker("y", delay))
            sim.run()
            return order, sim.now

        reference = run("heap")
        for kernel in BACKENDS[1:]:
            assert run(kernel) == reference, kernel


class TestInterruptWhilePooled:
    def test_interrupt_during_pooled_timeout(self):
        """Interrupting an int-yield wait leaves a stale pooled proxy in the
        schedule; the wheel's bucket drain must discard it exactly like the
        heap does (no double wake, no pool corruption)."""

        def run(kernel):
            sim = Simulator(kernel=kernel)
            trace = []

            def victim():
                for round_index in range(3):
                    try:
                        yield 100
                        trace.append((sim.now, "slept"))
                    except Interrupt as exc:
                        trace.append((sim.now, "interrupted", str(exc.cause)))
                        yield 2  # reuses a pooled proxy immediately

            def attacker(target):
                yield 5
                target.interrupt("one")
                yield 3
                target.interrupt("two")

            target = sim.process(victim())
            sim.process(attacker(target))
            sim.run()
            return trace, sim.now

        reference = run("heap")
        for kernel in BACKENDS[1:]:
            assert run(kernel) == reference, kernel

    def test_pool_recycling_stays_consistent(self):
        """After interrupts, recycled proxies must still fire correctly."""

        def run(kernel):
            sim = Simulator(kernel=kernel)
            wakes = []

            def sleeper(name):
                try:
                    yield 500
                except Interrupt:
                    pass
                for _ in range(5):
                    yield 1
                wakes.append((sim.now, name))

            def spammer():
                for _ in range(50):
                    yield 1

            victims = [sim.process(sleeper("v%d" % i)) for i in range(4)]

            def attacker():
                yield 3
                for victim in victims:
                    victim.interrupt()

            sim.process(attacker())
            sim.process(spammer())
            sim.run()
            return wakes, sim.now, sim.events_processed

        reference = run("heap")
        for kernel in BACKENDS[1:]:
            assert run(kernel) == reference, kernel


class TestWheelRunSemantics:
    """Heap-equivalent contract details on the wheel-family backends."""

    @pytest.mark.parametrize("kernel", ["wheel", "compiled"])
    def test_deadline_is_exclusive_and_fast_forwards(self, kernel):
        sim = Simulator(kernel=kernel)
        fired = []

        def worker():
            yield 10
            fired.append(sim.now)

        sim.process(worker())
        sim.run(until=10)  # exclusive: the cycle-10 event must NOT fire
        assert sim.now == 10
        assert fired == []
        sim.run()
        assert fired == [10]

    @pytest.mark.parametrize("kernel", ["wheel", "compiled"])
    def test_idle_fast_forward_reaches_overflow(self, kernel):
        """With an empty wheel, run(until=...) jumps straight to the
        deadline even when the only pending event sits in the overflow."""
        sim = Simulator(kernel=kernel)
        fired = []

        def worker():
            yield 5 * WHEEL_SIZE
            fired.append(sim.now)

        sim.process(worker())
        sim.run(until=3 * WHEEL_SIZE)
        assert sim.now == 3 * WHEEL_SIZE and fired == []
        sim.run()
        assert fired == [5 * WHEEL_SIZE]

    def test_step_and_peek_match_heap(self):
        def drive(kernel):
            sim = Simulator(kernel=kernel)
            seen = []

            def worker(name):
                yield 4
                seen.append((sim.now, name))
                yield WHEEL_SIZE + 4
                seen.append((sim.now, name))

            sim.process(worker("a"))
            sim.process(worker("b"))
            peeks = []
            while sim.peek() is not None:
                peeks.append(sim.peek())
                sim.step()
            return seen, peeks, sim.now

        reference = drive("heap")
        for kernel in BACKENDS[1:]:
            assert drive(kernel) == reference, kernel

    @pytest.mark.parametrize("kernel", ["wheel", "compiled"])
    def test_step_on_empty_raises_index_error(self, kernel):
        with pytest.raises(IndexError):
            Simulator(kernel=kernel).step()

    def test_zero_delay_during_drain_fires_same_cycle(self):
        """A callback that schedules a zero-delay event mid-drain must see
        it fire within the same cycle (the live bucket-length check)."""

        def run(kernel):
            sim = Simulator(kernel=kernel)
            order = []

            def parent():
                yield 3
                order.append((sim.now, "parent"))
                sim.process(child())
                yield 1
                order.append((sim.now, "parent-after"))

            def child():
                yield sim.timeout(0)
                order.append((sim.now, "child"))

            sim.process(parent())
            sim.run()
            return order

        reference = run("heap")
        for kernel in BACKENDS[1:]:
            assert run(kernel) == reference, kernel


class TestCancelParity:
    def test_arbiter_cancel_mid_contention(self):
        """A master that withdraws a queued request (``Arbiter.cancel``,
        the fault layer's timeout-escalation path) must leave the same
        grant sequence, wait accounting, and final clock on every
        backend -- including the dispatch that skips the withdrawn entry."""
        from repro.sim.arbiter import FCFSArbiter

        def run(kernel):
            sim = Simulator(kernel=kernel)
            arbiter = FCFSArbiter(sim, "seg")
            trace = []

            def holder():
                grant = arbiter.request("hold")
                yield grant
                trace.append((sim.now, "hold", "granted"))
                yield 30
                arbiter.release("hold")
                trace.append((sim.now, "hold", "released"))

            def quitter():
                yield 2  # queue behind the holder...
                grant = arbiter.request("quit")
                yield 10  # ...then give up before the grant can land
                arbiter.cancel("quit", grant)
                trace.append((sim.now, "quit", "cancelled"))
                yield 1

            def patient(name, delay):
                yield delay
                grant = arbiter.request(name)
                yield grant
                trace.append((sim.now, name, "granted"))
                yield 5
                arbiter.release(name)
                trace.append((sim.now, name, "released"))

            sim.process(holder())
            sim.process(quitter())
            sim.process(patient("p1", 4))
            sim.process(patient("p2", 6))
            sim.run()
            return trace, sim.now, arbiter.grants, arbiter.wait_cycles

        reference = run("heap")
        # The withdrawn master must never appear granted.
        assert not any(m == "quit" and what == "granted" for _, m, what in reference[0])
        for kernel in BACKENDS[1:]:
            assert run(kernel) == reference, kernel

    def test_cancel_after_grant_landed(self):
        """Cancelling when the grant already landed releases the bus (the
        giver-upper secretly owns it); the hand-off order must match."""
        from repro.sim.arbiter import FCFSArbiter

        def run(kernel):
            sim = Simulator(kernel=kernel)
            arbiter = FCFSArbiter(sim, "seg")
            trace = []

            def holder():
                grant = arbiter.request("hold")
                yield grant
                yield 10
                arbiter.release("hold")

            def racer():
                yield 1
                grant = arbiter.request("racer")
                # Sleep past the grant: it lands at cycle 10 while we doze.
                yield 20
                arbiter.cancel("racer", grant)
                trace.append((sim.now, "racer", "cancelled", arbiter.owner))

            def waiter():
                yield 15
                grant = arbiter.request("waiter")
                yield grant
                trace.append((sim.now, "waiter", "granted", arbiter.owner))
                arbiter.release("waiter")

            sim.process(holder())
            sim.process(racer())
            sim.process(waiter())
            sim.run()
            return trace, sim.now, arbiter.grants, arbiter.owner

        reference = run("heap")
        assert reference[3] is None  # everything retired
        for kernel in BACKENDS[1:]:
            assert run(kernel) == reference, kernel


# ---------------------------------------------------------------------------
# Backend selection plumbing
# ---------------------------------------------------------------------------

class TestBackendSelection:
    def test_explicit_kwarg_beats_env(self, monkeypatch):
        monkeypatch.setenv("REPRO_SIM_KERNEL", "wheel")
        assert Simulator(kernel="heap").kernel_name == "heap"
        assert type(Simulator()) is WheelSimulator

    def test_env_var_default(self, monkeypatch):
        monkeypatch.setenv("REPRO_SIM_KERNEL", "wheel")
        assert default_kernel() == "wheel"
        assert Simulator().kernel_name == "wheel"
        monkeypatch.delenv("REPRO_SIM_KERNEL")
        assert default_kernel() == "heap"
        assert Simulator().kernel_name == "heap"

    def test_set_default_kernel_roundtrip(self, monkeypatch):
        monkeypatch.delenv("REPRO_SIM_KERNEL", raising=False)
        set_default_kernel("wheel")
        try:
            assert default_kernel() == "wheel"
        finally:
            set_default_kernel("heap")
        assert default_kernel() == "heap"

    def test_unknown_backend_rejected(self, monkeypatch):
        from repro.sim.kernel import SimulationError

        with pytest.raises(SimulationError):
            Simulator(kernel="splay")
        monkeypatch.setenv("REPRO_SIM_KERNEL", "splay")
        with pytest.raises(SimulationError):
            default_kernel()
        with pytest.raises(SimulationError):
            set_default_kernel("splay")


# ---------------------------------------------------------------------------
# total_events_processed accounting
# ---------------------------------------------------------------------------

class TestEventAccounting:
    @pytest.mark.parametrize("kernel", BACKENDS)
    def test_total_counter_tracks_run(self, kernel):
        def worker():
            for _ in range(25):
                yield 2

        sim = Simulator(kernel=kernel)
        for _ in range(3):
            sim.process(worker())
        before = total_events_processed()
        sim.run()
        assert total_events_processed() - before == sim.events_processed
        assert sim.events_processed > 0

    @pytest.mark.parametrize("kernel", BACKENDS)
    def test_total_counter_tracks_step(self, kernel):
        sim = Simulator(kernel=kernel)

        def worker():
            yield 1
            yield WHEEL_SIZE + 1

        sim.process(worker())
        before = total_events_processed()
        steps = 0
        while sim.peek() is not None:
            sim.step()
            steps += 1
        assert total_events_processed() - before == steps == sim.events_processed

    def test_backends_count_identically(self):
        """Both backends charge the same number of events for one workload
        (the runner's per-case telemetry depends on this)."""
        results = {}
        for kernel in BACKENDS:
            sim = Simulator(kernel=kernel)
            log = []
            _random_workload(sim, log, seed=99)
            before = total_events_processed()
            sim.run()
            results[kernel] = (total_events_processed() - before, sim.events_processed)
        for kernel in BACKENDS[1:]:
            assert results[kernel] == results["heap"], kernel

    def test_pool_workers_report_same_counts_per_backend(self):
        """Per-case event counts from worker processes match the in-process
        counts, on both backends (REPRO_SIM_KERNEL is inherited by the
        runner's spawned workers through the environment)."""
        from repro.experiments.table2 import run_table2_telemetry

        counts = {}
        for kernel in BACKENDS:
            for jobs in (1, 2):
                rows, telemetry = run_table2_telemetry(
                    packets=2,
                    cases=[(3, "GBAVIII", "FPA"), (7, "SPLITBA", "FPA")],
                    jobs=jobs,
                    telemetry=False,
                    kernel=kernel,
                )
                counts[(kernel, jobs)] = [
                    entry.events_processed for entry in telemetry
                ]
                assert all(count > 0 for count in counts[(kernel, jobs)])
        # Same backend: pool workers must report exactly the inline counts.
        for kernel in BACKENDS:
            assert counts[(kernel, 1)] == counts[(kernel, 2)], kernel
        # Across backends the counts agree too -- the wheel batches bucket
        # pops (and the compiled backend fires direct entries) but still
        # charges one event per fire.
        for kernel in BACKENDS[1:]:
            assert counts[(kernel, 1)] == counts[("heap", 1)], kernel
