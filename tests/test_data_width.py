"""Width-parameterization sweep (ISSUE 10 regression suite).

The generation stack must honor ``data_width`` end to end: the wire and
module libraries emit a split dh/dl lane pair at widths >= 64 and a
single-lane layout at 32, memory word counts derive from the true word
size, and the verify layer reads the same widths out of the elaborated
netlist.  Three guards:

* a {32, 64, 128} x {BFBA, SPLITBA, GBAVII} sweep asserting HDL lint
  cleanliness and netlist<->machine structural equivalence at every
  width;
* bit-identity of every default-width (64) preset netlist against the
  checked-in SHA-256 baselines captured before the width work landed
  (``tests/data/netlist_sha256_w64.json``) -- no regression at the
  default width;
* Table II/V gate counts must scale with the data width (the estimator
  once hard-coded 64-bit data paths).
"""

import hashlib
import json
import os

import pytest

from repro.core.busyn import BusSyn
from repro.hdl import lint_design
from repro.options import presets
from repro.sim.fabric import build_machine
from repro.verify import compare_graphs, graph_from_design, graph_from_machine

GOLDEN_PATH = os.path.join(os.path.dirname(__file__), "data", "netlist_sha256_w64.json")

WIDTHS = [32, 64, 128]
SWEEP_ARCHS = ["BFBA", "SPLITBA", "GBAVII"]


def _spec(arch, data_width, pe_count=4):
    spec = presets.preset(arch, pe_count)
    if data_width is not None:
        # The same width-axis application as the DSE sweep and the verify
        # runner: the option lands on every bus and every memory.
        for subsystem in spec.subsystems:
            for bus in subsystem.buses:
                bus.data_width = data_width
            for ban in subsystem.bans:
                for memory in ban.memories:
                    memory.data_width = data_width
        spec.validate()
    return spec


class TestWidthSweep:
    @pytest.mark.parametrize("arch", SWEEP_ARCHS)
    @pytest.mark.parametrize("width", WIDTHS)
    def test_lint_clean(self, arch, width):
        generated = BusSyn(cache=False).generate(_spec(arch, width))
        errors = [m for m in lint_design(generated.design()) if m.severity == "error"]
        assert errors == [], "\n".join(str(m) for m in errors)

    @pytest.mark.parametrize("arch", SWEEP_ARCHS)
    @pytest.mark.parametrize("width", WIDTHS)
    def test_structural_equivalence(self, arch, width):
        spec = _spec(arch, width)
        generated = BusSyn(cache=False).generate(spec)
        findings = compare_graphs(
            graph_from_design(generated.design()),
            graph_from_machine(build_machine(spec)),
        )
        assert findings == [], "\n".join(str(f) for f in findings)

    @pytest.mark.parametrize("arch", SWEEP_ARCHS)
    def test_segment_width_tracks_option(self, arch):
        for width in WIDTHS:
            spec = _spec(arch, width)
            graph = graph_from_design(BusSyn(cache=False).generate(spec).design())
            seg_widths = {
                node.data_width
                for node in graph.segments.values()
                if node.data_width is not None
            }
            assert seg_widths == {width}, (
                "%s at %d bits: netlist segment widths %s" % (arch, width, seg_widths)
            )


class TestDefaultWidthBitIdentity:
    """data_width=64 output is byte-identical to the pre-PR netlists."""

    with open(GOLDEN_PATH) as handle:
        GOLDEN = json.load(handle)

    @pytest.mark.parametrize("key", sorted(GOLDEN))
    def test_netlist_unchanged(self, key):
        arch, pe_count = key.rsplit("_pes", 1)
        spec = presets.preset(arch, int(pe_count))
        text = BusSyn(cache=False).generate(spec).verilog()
        golden = self.GOLDEN[key]
        assert len(text.encode()) == golden["bytes"], "%s: size changed" % key
        assert hashlib.sha256(text.encode()).hexdigest() == golden["sha256"], (
            "%s: netlist text changed at the default data width" % key
        )


class TestGateCountsScaleWithWidth:
    @pytest.mark.parametrize("arch", SWEEP_ARCHS)
    def test_table2_counts_differ_between_32_and_128(self, arch):
        counts = {
            width: BusSyn(cache=False).generate(_spec(arch, width)).report.gate_count
            for width in WIDTHS
        }
        assert counts[32] < counts[64] < counts[128], counts
