"""Tests for the database example (object store + workload)."""

import pytest

from repro.apps.database import ObjectStore, run_database
from repro.options import presets
from repro.sim.fabric import build_machine
from repro.soc.api import SocAPI
from repro.soc.rtos import Rtos


class TestObjectStore:
    def test_layout_deterministic(self):
        machine = build_machine(presets.preset("GGBA", 4))
        api = SocAPI(machine, "A")
        store = ObjectStore(machine, api, object_count=4, size_words=10)
        offsets = [obj.offset for obj in store.objects]
        assert len(set(offsets)) == 4
        assert store.object(0) is store.object(4)  # modulo indexing

    def test_attach_shares_layout(self):
        machine = build_machine(presets.preset("GGBA", 4))
        api_a, api_b = SocAPI(machine, "A"), SocAPI(machine, "B")
        store = ObjectStore(machine, api_a, 3, 10)
        view = ObjectStore.attach(machine, api_b, store)
        assert view.objects is store.objects
        assert view.locks.base == store.locks.base

    def test_locked_read_write(self):
        machine = build_machine(presets.preset("GGBA", 4))
        api = SocAPI(machine, "A")
        store = ObjectStore(machine, api, 2, 8)
        rtos = Rtos(api)
        results = []

        def task():
            obj = store.object(0)
            yield from store.write_object(rtos, obj, list(range(8)))
            values = yield from store.read_object(rtos, obj, 8)
            results.append(values)

        rtos.spawn("t", task())
        machine.pe("A").run(rtos.run())
        machine.sim.run()
        assert results == [list(range(8))]
        assert store.lock_of(store.object(0)).acquisitions == 2


class TestWorkload:
    def test_all_tasks_complete_small(self):
        machine = build_machine(presets.preset("GGBA", 4))
        result = run_database(machine, client_count=8, transactions_per_task=2)
        assert result.tasks_completed == 9  # 8 clients + server
        assert result.cycles > 0

    def test_full_paper_configuration(self):
        machine = build_machine(presets.preset("GGBA", 4))
        result = run_database(machine)
        assert result.tasks_completed == 41
        assert result.client_count == 40
        assert result.words_per_task == 100

    def test_splitba_faster_than_ggba(self):
        ggba = run_database(build_machine(presets.preset("GGBA", 4)))
        splitba = run_database(build_machine(presets.preset("SPLITBA", 4)))
        assert splitba.tasks_completed == 41
        assert splitba.execution_time_ns < ggba.execution_time_ns

    def test_requires_shared_memory(self):
        machine = build_machine(presets.preset("BFBA", 4))
        with pytest.raises(ValueError):
            run_database(machine)

    def test_lock_accounting(self):
        machine = build_machine(presets.preset("GGBA", 4))
        result = run_database(machine, client_count=8, transactions_per_task=2)
        # Server populates 10 objects; each client locks twice per round.
        assert result.lock_acquisitions == 10 + 8 * 2 * 2

    def test_execution_time_units(self):
        machine = build_machine(presets.preset("GGBA", 4))
        result = run_database(machine, client_count=4, transactions_per_task=1)
        assert result.execution_time_ns == result.cycles * 10
        assert result.execution_time_ms == pytest.approx(result.cycles / 1e5)

    def test_context_switches_recorded(self):
        machine = build_machine(presets.preset("GGBA", 4))
        result = run_database(machine, client_count=8, transactions_per_task=1)
        assert set(result.context_switches) == {"A", "B", "C", "D"}
        assert all(v > 0 for v in result.context_switches.values())
