"""Tests for data packing helpers."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.soc import pack


class TestQ15:
    def test_roundtrip_small_values(self):
        samples = [0.5 + 0.25j, -0.75 - 0.125j, 0j]
        words = pack.complex_to_words(samples)
        back = pack.words_to_complex(words)
        np.testing.assert_allclose(back, samples, atol=1 / pack.Q15_SCALE)

    def test_clipping(self):
        words = pack.complex_to_words([2.0 + 2.0j])
        back = pack.words_to_complex(words)[0]
        assert back.real <= 1.0 and back.imag <= 1.0

    @given(
        st.lists(
            st.complex_numbers(max_magnitude=0.99, allow_nan=False, allow_infinity=False),
            min_size=1,
            max_size=64,
        )
    )
    @settings(max_examples=40, deadline=None)
    def test_roundtrip_property(self, samples):
        words = pack.complex_to_words(samples)
        assert all(0 <= w < 2**32 for w in words)
        back = pack.words_to_complex(words)
        np.testing.assert_allclose(back, samples, atol=2 / pack.Q15_SCALE)


class TestFloat32:
    def test_roundtrip_exact_for_float32(self):
        samples = np.array([1.5 - 2.25j, 1e-3 + 4j, -7j], dtype=np.complex64)
        words = pack.complex_to_float_words(samples)
        assert len(words) == 6
        back = pack.float_words_to_complex(words)
        np.testing.assert_array_equal(back.astype(np.complex64), samples)

    def test_odd_word_count_rejected(self):
        with pytest.raises(ValueError):
            pack.float_words_to_complex([1, 2, 3])

    @given(
        st.lists(
            st.complex_numbers(max_magnitude=1e6, allow_nan=False, allow_infinity=False),
            min_size=1,
            max_size=64,
        )
    )
    @settings(max_examples=40, deadline=None)
    def test_roundtrip_property(self, samples):
        words = pack.complex_to_float_words(samples)
        back = pack.float_words_to_complex(words)
        expected = np.asarray(samples, dtype=np.complex64)
        np.testing.assert_array_equal(back.astype(np.complex64), expected)


class TestBytes:
    def test_roundtrip_with_padding(self):
        data = b"hello world!!"
        words = pack.bytes_to_words(data)
        assert len(words) == 4  # 13 bytes -> 4 words
        assert pack.words_to_bytes(words, len(data)) == data

    def test_empty(self):
        assert pack.bytes_to_words(b"") == []
        assert pack.words_to_bytes([], 0) == b""

    @given(st.binary(min_size=0, max_size=256))
    @settings(max_examples=40, deadline=None)
    def test_roundtrip_property(self, data):
        words = pack.bytes_to_words(data)
        assert pack.words_to_bytes(words, len(data)) == data


class TestBits:
    def test_roundtrip(self):
        bits = [1, 0, 1, 1] * 10
        words = pack.bits_to_words(bits)
        assert pack.words_to_bits(words, len(bits)) == bits

    def test_partial_word_msb_aligned(self):
        words = pack.bits_to_words([1])
        assert words == [0x80000000]

    def test_too_few_words_raises(self):
        with pytest.raises(ValueError):
            pack.words_to_bits([0], 64)

    @given(st.lists(st.integers(min_value=0, max_value=1), min_size=1, max_size=200))
    @settings(max_examples=40, deadline=None)
    def test_roundtrip_property(self, bits):
        assert pack.words_to_bits(pack.bits_to_words(bits), len(bits)) == bits


class TestInts:
    def test_masking(self):
        assert pack.ints_to_words([2**33 + 7, -1]) == [7, 0xFFFFFFFF]
