"""Tests for the parallel experiment runner and the BusSyn generation cache.

Covers DESIGN.md section 4's runner contract: results in input order,
parallel runs bit-identical to sequential ones, per-case telemetry, and
the spec-keyed :class:`~repro.core.busyn.BusSyn` cache that makes repeated
generation calls free for the experiment drivers (and must stay *off* for
the Table V generation-time measurements).
"""

import pytest

from repro.core.busyn import BusSyn
from repro.experiments.runner import CaseTelemetry, run_cases
from repro.options import presets


def _square(case, offset=0):
    return case * case + offset


class TestRunCases:
    def test_inline_preserves_order_and_telemetry(self):
        results, telemetry = run_cases(_square, [3, 1, 2])
        assert results == [9, 1, 4]
        assert [t.case for t in telemetry] == [3, 1, 2]
        assert all(t.wall_seconds >= 0 for t in telemetry)
        assert all(isinstance(t, CaseTelemetry) for t in telemetry)

    def test_kwargs_forwarded(self):
        results, _telemetry = run_cases(_square, [2], kwargs={"offset": 10})
        assert results == [14]

    def test_parallel_matches_inline(self):
        sequential, _ = run_cases(_square, list(range(6)), jobs=1)
        parallel, telemetry = run_cases(_square, list(range(6)), jobs=2)
        assert parallel == sequential
        assert [t.case for t in telemetry] == list(range(6))

    def test_single_case_skips_the_pool(self):
        # len(cases) <= 1 runs inline even with jobs > 1.
        results, _ = run_cases(_square, [5], jobs=8)
        assert results == [25]

    def test_rejects_non_module_level_callables(self):
        with pytest.raises(ValueError):
            run_cases(lambda case: case, [1])

        class Holder:
            @staticmethod
            def worker(case):
                return case

        with pytest.raises(ValueError):
            run_cases(Holder.worker, [1])

    def test_telemetry_counts_kernel_events(self):
        from repro.experiments.table4 import run_table4_case

        _result, telemetry = run_cases(run_table4_case, [(15, "GGBA")])
        assert telemetry[0].events_processed > 0
        assert telemetry[0].events_per_second() > 0

    def test_table4_parallel_rows_identical(self):
        from repro.experiments.table4 import run_table4

        sequential = run_table4(jobs=1)
        parallel = run_table4(jobs=2)
        assert [vars(row) for row in parallel] == [vars(row) for row in sequential]


class TestBusSynCache:
    def test_cache_hit_returns_same_object(self):
        tool = BusSyn()
        spec = presets.preset("GBAVIII", 2)
        first = tool.generate(spec)
        assert tool.generate(spec) is first
        # An equal spec built independently hits the same key.
        assert tool.generate(presets.preset("GBAVIII", 2)) is first

    def test_cache_disabled_regenerates(self):
        tool = BusSyn(cache=False)
        spec = presets.preset("GBAVIII", 2)
        assert tool.generate(spec) is not tool.generate(spec)

    def test_distinct_specs_do_not_collide(self):
        tool = BusSyn()
        two = tool.generate(presets.preset("GBAVIII", 2))
        four = tool.generate(presets.preset("GBAVIII", 4))
        assert two is not four
        assert BusSyn.spec_key(presets.preset("GBAVIII", 2)) != BusSyn.spec_key(
            presets.preset("GBAVIII", 4)
        )

    def test_cached_and_fresh_runs_emit_same_verilog(self):
        spec = presets.preset("SPLITBA", 2)
        cached = BusSyn().generate(spec)
        fresh = BusSyn(cache=False).generate(spec)
        assert cached.verilog() == fresh.verilog()
