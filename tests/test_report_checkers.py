"""Tests for the Table V checker, figure checkers, and the report formatter."""

from repro.experiments import figures
from repro.experiments.report import _section
from repro.experiments.table5 import Table5Row, check_table5_shape


def _rows(per_pe):
    """Synthesize Table5 rows from a per-PE cost dict."""
    rows = []
    for bus, cost in per_pe.items():
        for n in (8, 16, 24):
            rows.append(Table5Row(bus, n, 5.0, cost * n, 0, None))
    return rows


GOOD = {"HYBRID": 2200, "GBAVIII": 1800, "GBAVI": 900, "BFBA": 880, "SPLITBA": 600}


class TestTable5Checker:
    def test_good_shape_passes(self):
        assert check_table5_shape(_rows(GOOD)) == []

    def test_catches_lint_errors(self):
        rows = _rows(GOOD)
        rows[0].lint_errors = 3
        assert any("lint" in failure for failure in check_table5_shape(rows))

    def test_catches_slow_generation(self):
        rows = _rows(GOOD)
        rows[0].generation_time_ms = 60_000
        assert any("10 s" in failure for failure in check_table5_shape(rows))

    def test_catches_nonlinear_scaling(self):
        rows = _rows(GOOD)
        # Blow up one 24-PE point so the slope jumps.
        for row in rows:
            if row.bus_system == "BFBA" and row.pe_count == 24:
                row.gate_count *= 3
        assert any("near-linear" in failure for failure in check_table5_shape(rows))

    def test_catches_wrong_ordering(self):
        swapped = dict(GOOD)
        swapped["SPLITBA"], swapped["HYBRID"] = swapped["HYBRID"], swapped["SPLITBA"]
        failures = check_table5_shape(_rows(swapped))
        assert any("ordering" in failure for failure in failures)


class TestFigureCheckers:
    def test_figure26_catches_mixed_groups_in_ppa(self):
        schedules = {
            "PPA": [("A", "E", 0, 0, 10), ("A", "F", 0, 10, 20)],
            "FPA": [("A", "EFGH", 0, 0, 10)],
        }
        failures = figures.check_figure26(schedules)
        assert any("expected one" in failure for failure in failures)

    def test_figure26_catches_pipeline_violation(self):
        schedules = {
            "PPA": [
                ("A", "E", 0, 0, 100),
                ("B", "F", 0, 50, 150),  # F starts before E ends
                ("C", "G", 0, 160, 170),
                ("D", "H", 0, 180, 190),
            ],
            "FPA": [("A", "EFGH", 0, 0, 10)],
        }
        failures = figures.check_figure26(schedules)
        assert any("before E finished" in failure for failure in failures)

    def test_figure27_catches_non_round_robin(self):
        assignment = {0: "A", 1: "B", 2: "C", 3: "C"}
        assert figures.check_figure27(assignment) != []


class TestReportFormatting:
    def test_section_ok(self):
        lines = _section("Title", ["row1", "row2"], [])
        text = "\n".join(lines)
        assert "## Title" in text
        assert "    row1" in text
        assert "**OK**" in text

    def test_section_failures_listed(self):
        lines = _section("Title", ["row"], ["something broke"])
        text = "\n".join(lines)
        assert "SHAPE CHECK FAILED" in text
        assert "* something broke" in text
