"""Gen-3 compiled backend: generated kernel variants + fabric specializer.

Observational parity with the heap backend is pinned three ways in
``test_scheduler_parity.py`` (random workloads) and ``test_machine_builder.py``
(hook combinations); this file covers what is *specific* to the compiled
backend: the generated sources themselves, the direct-entry representation,
the specializer's eligibility rules, install/remove life cycle, and the
``repro compile`` inspection verb.
"""

import os

import pytest

from repro.apps.ofdm import OfdmParameters, run_ofdm
from repro.options import presets
from repro.sim.compiled import (
    CompiledSimulator,
    KERNEL_VARIANTS,
    generated_kernel_sources,
)
from repro.sim.compiled.specializer import (
    eligible_pairs,
    specialize_machine,
    specialized_fabric_source,
)
from repro.sim.fabric import MachineBuilder, build_machine
from repro.sim.kernel import WHEEL_SIZE, Interrupt, SimulationError, Simulator


# ---------------------------------------------------------------------------
# Generated kernel variants
# ---------------------------------------------------------------------------


class TestGeneratedKernelSources:
    def test_every_variant_rendered(self):
        sources = generated_kernel_sources()
        assert sorted(sources) == sorted(KERNEL_VARIANTS)
        assert set(KERNEL_VARIANTS) == {"plain", "deadline", "stop", "monitored"}

    def test_every_variant_compiles(self):
        for variant, source in generated_kernel_sources().items():
            compile(source, "<kernel:%s>" % variant, "exec")

    def test_variants_specialize_their_checks(self):
        # Every variant shares the uniform (sim, stop_event, deadline,
        # limit) signature; what differs is the *body*.  The plain variant
        # carries neither deadline nor stop-event checks and no per-event
        # depth bookkeeping -- that is the whole point of generating one
        # loop per configuration.
        def body(variant):
            lines = generated_kernel_sources()[variant].splitlines()
            start = next(
                index
                for index, line in enumerate(lines)
                if line.startswith("def _compiled_run")
            )
            return "\n".join(lines[start + 1 :])

        assert "deadline" not in body("plain")
        assert "stop_event" not in body("plain")
        assert "deadline" in body("deadline")
        assert "stop_event" in body("stop")
        assert "stop_event" not in body("deadline")
        assert "deadline" not in body("stop")
        # Only the monitored variant pays for queue-depth tracking.
        assert "peak" in body("monitored")
        for variant in ("plain", "deadline", "stop"):
            assert "peak" not in body(variant)

    def test_no_hook_call_sites_in_fast_variants(self):
        # Free-when-off becomes absent-when-off: the generated fast loops
        # contain no tracer/obs call sites at all.
        for variant in ("plain", "deadline", "stop"):
            source = generated_kernel_sources()[variant]
            assert "tracer" not in source
            assert "obs" not in source


class TestCompiledSimulatorSelection:
    def test_kernel_kwarg(self):
        sim = Simulator(kernel="compiled")
        assert type(sim) is CompiledSimulator
        assert sim.kernel_name == "compiled"

    def test_env_var(self, monkeypatch):
        monkeypatch.setenv("REPRO_SIM_KERNEL", "compiled")
        assert type(Simulator()) is CompiledSimulator

    def test_listed_in_backends(self):
        from repro.sim.kernel import KERNEL_BACKENDS

        assert "compiled" in KERNEL_BACKENDS


class TestDirectEntries:
    def test_in_horizon_int_yield_uses_bare_tuple(self):
        sim = Simulator(kernel="compiled")

        def worker():
            yield 5
            yield 5

        process = sim.process(worker())
        sim.step()  # fires the spawn event; reschedules via direct entry
        bucket = sim._buckets[5 & (WHEEL_SIZE - 1)]
        assert any(
            type(entry) is tuple and len(entry) == 1 and entry[0] is process
            for entry in bucket
        )
        assert process._target is not None
        sim.run()
        assert sim.now == 10

    def test_stale_direct_entry_still_delivers_interrupt(self):
        """An interrupt cancels the pending direct entry (stale), but a
        *second* interrupt queued before the stale entry drains must be
        delivered when it fires -- the heap does, so the compiled drain
        must delegate stale entries instead of skipping them."""
        sim = Simulator(kernel="compiled")
        caught = []

        def victim():
            for _ in range(3):
                try:
                    yield 10
                except Interrupt as exc:
                    caught.append((sim.now, str(exc.cause)))

        target = sim.process(victim())

        def attacker():
            yield 2
            target.interrupt("a")
            target.interrupt("b")

        sim.process(attacker())
        sim.run()
        assert caught[:2] == [(2, "a"), (2, "b")]

    def test_event_limit_raises(self):
        sim = Simulator(kernel="compiled")

        def livelock():
            while True:
                yield 1

        sim.process(livelock())
        with pytest.raises(SimulationError):
            sim.run(limit=100)

    def test_negative_delay_rejected(self):
        sim = Simulator(kernel="compiled")

        def bad():
            yield -3

        sim.process(bad())
        with pytest.raises(SimulationError):
            sim.run()

    def test_non_event_yield_rejected(self):
        sim = Simulator(kernel="compiled")

        def bad():
            yield "soon"

        sim.process(bad())
        with pytest.raises(SimulationError):
            sim.run()


# ---------------------------------------------------------------------------
# Fabric specializer
# ---------------------------------------------------------------------------


def _machine(preset="GBAVIII", pes=4, kernel="compiled"):
    return build_machine(presets.preset(preset, pes), kernel=kernel)


class TestEligibility:
    def test_memory_and_hsregs_only(self):
        machine = _machine()
        kinds = {device.kind for _pe, device, _seg in eligible_pairs(machine)}
        assert kinds <= {"memory", "hsregs"}

    def test_every_preset_has_pairs(self):
        for preset in sorted(presets.PRESETS):
            machine = _machine(preset)
            assert machine._specialized, preset
            pairs = list(eligible_pairs(machine))
            assert pairs, "no eligible pairs on %s" % preset

    def test_traced_segment_is_ineligible(self):
        from repro.obs import Observability

        machine = _machine()
        machine.attach_observability(Observability())
        assert list(eligible_pairs(machine)) == []


class TestSpecializeLifecycle:
    def test_source_is_deterministic(self):
        source_a, entries_a = specialized_fabric_source(_machine())
        source_b, entries_b = specialized_fabric_source(_machine())
        assert source_a == source_b
        assert [name for name, *_ in entries_a] == [name for name, *_ in entries_b]

    def test_source_compiles_standalone(self):
        source, entries = specialized_fabric_source(_machine())
        assert entries
        compile(source, "<fabric>", "exec")

    def test_install_is_idempotent(self):
        machine = _machine()
        assert machine._specialized
        dispatch = machine.__dict__["transaction"]
        assert specialize_machine(machine)  # second call: no-op, still True
        assert machine.__dict__["transaction"] is dispatch

    def test_heap_machine_never_specializes(self):
        # The builder gates specialization on the compiled kernel; a heap
        # build keeps the generic class-level dispatch.
        machine = _machine(kernel="heap")
        assert not machine._specialized
        assert "transaction" not in machine.__dict__

    def test_despecialize_restores_class_methods(self):
        machine = _machine()
        assert "transaction" in machine.__dict__
        machine._despecialize()
        assert "transaction" not in machine.__dict__
        assert "miss_traffic" not in machine.__dict__
        assert not machine._specialized
        # The class-level generic path still works after removal.
        assert machine.transaction.__self__ is machine

    def test_attach_monitors_despecializes(self):
        machine = _machine()
        machine.attach_monitors()
        assert not machine._specialized

    def test_install_faults_despecializes(self):
        from repro.faults import SMOKE_SCENARIO, compile_plan, install_faults

        machine = _machine()
        plan = compile_plan(machine, SMOKE_SCENARIO, seed=1)
        install_faults(machine, plan)
        assert not machine._specialized


class TestSpecializedParity:
    @pytest.mark.parametrize("preset,style", [("GBAVIII", "FPA"), ("GBAVII", "PPA")])
    def test_specialized_matches_generic(self, preset, style):
        """Specialized dispatch is bit-identical to the generic fabric path
        on the same compiled kernel (GBAVII adds DMA masters, which fall
        through the jump table to the generic path)."""

        def run(specialize):
            builder = MachineBuilder(presets.preset(preset, 4)).with_kernel("compiled")
            if not specialize:
                builder.without_specialization()
            machine = builder.build()
            assert machine._specialized == specialize
            result = run_ofdm(machine, style, OfdmParameters(packets=1))
            return result.cycles, result.throughput_mbps, vars(
                machine.run_report(name="parity")
            )

        assert run(True) == run(False)


# ---------------------------------------------------------------------------
# repro compile verb
# ---------------------------------------------------------------------------


class TestCompileVerb:
    def test_dumps_kernel_and_fabric_sources(self, tmp_path, capsys):
        from repro.cli import main

        out = str(tmp_path / "dump")
        assert main(["compile", "--preset", "GBAVIII", "--pes", "4", "-o", out]) == 0
        files = sorted(os.listdir(out))
        assert files == [
            "fabric_gbaviii.py",
            "kernel_deadline.py",
            "kernel_monitored.py",
            "kernel_plain.py",
            "kernel_stop.py",
        ]
        for name in files:
            with open(os.path.join(out, name)) as handle:
                compile(handle.read(), name, "exec")
        captured = capsys.readouterr().out
        assert "specialized (master, device) pair(s)" in captured
