"""Tests for the GBAVII extension and the DMA engine."""

import numpy as np
import pytest

from repro.apps.database import run_database
from repro.apps.mpeg2.codec import decode_sequence, encode_sequence, synthetic_video
from repro.apps.mpeg2.parallel import run_mpeg2
from repro.apps.ofdm import OfdmParameters, run_ofdm
from repro.core import BusSyn
from repro.hdl import elaborate
from repro.options import presets
from repro.sim.dma import DmaEngine
from repro.sim.fabric import build_machine
from repro.soc.api import SocAPI


class TestGbaviiTopology:
    def test_fabric_shape(self):
        machine = build_machine(presets.preset("GBAVII", 4))
        assert len(machine.segments) == 5  # 4 PE segments + BAN G
        bridge_names = {bridge.name for bridge in machine.bridges}
        assert bridge_names == {"BB_AB", "BB_BC", "BB_CD", "BB_DG", "BB_GA"}
        assert machine.global_memory == "GLOBAL_SRAM_G"

    def test_shared_memory_reachable_from_every_pe(self):
        machine = build_machine(presets.preset("GBAVII", 4))
        results = {}

        def reader(ban):
            api = SocAPI(machine, ban)

            def program():
                yield from api.var_write("PING_%s" % ban, 1)
                value = yield from api.var_read("PING_%s" % ban)
                results[ban] = value

            return program

        for ban in machine.pe_order:
            machine.pe(ban).run(reader(ban)())
        machine.sim.run()
        assert results == {"A": 1, "B": 1, "C": 1, "D": 1}

    def test_generator_output(self):
        generated = BusSyn().generate(presets.preset("GBAVII", 4))
        assert generated.lint_errors() == []
        counts = elaborate(generated.design())
        assert counts["bb_gbavi"] == 4 + 5  # per-BAN BB_1 + 5 ring bridges
        assert any(name.startswith("ban_global") for name in counts)

    def test_performance_sits_between_versions(self):
        """GBAVII interpolates: above GGBA, below GBAVIII (OFDM FPA)."""
        params = OfdmParameters(packets=4)
        v2 = run_ofdm(build_machine(presets.preset("GBAVII", 4)), "FPA", params)
        v3 = run_ofdm(build_machine(presets.preset("GBAVIII", 4)), "FPA", params)
        ggba = run_ofdm(build_machine(presets.preset("GGBA", 4)), "FPA", params)
        assert ggba.throughput_mbps < v2.throughput_mbps < v3.throughput_mbps

    def test_mpeg2_decodes_correctly(self):
        video = synthetic_video(8)
        gops, _ = decode_sequence(encode_sequence(video))
        reference = {
            (gop.index, i): frame for gop in gops for i, frame in enumerate(gop.frames)
        }
        result = run_mpeg2(build_machine(presets.preset("GBAVII", 4)), video)
        assert sorted(result.frames) == sorted(reference)
        for key in reference:
            np.testing.assert_allclose(result.frames[key].y, reference[key].y, atol=0.51)

    def test_database_runs(self):
        result = run_database(
            build_machine(presets.preset("GBAVII", 4)), client_count=8
        )
        assert result.tasks_completed == 9


class TestDmaEngine:
    def test_basic_copy(self):
        machine = build_machine(presets.preset("GBAVIII", 4))
        machine.memory("GLOBAL_SRAM_G").write(100, list(range(50)))
        dma = DmaEngine(machine)
        process = dma.copy(("GLOBAL_SRAM_G", 100), ("GLOBAL_SRAM_G", 500), 50)
        machine.sim.run()
        assert process.value == 50
        assert machine.memory("GLOBAL_SRAM_G").read(500, 50) == list(range(50))
        assert dma.transfers == 1 and dma.words_moved == 50

    def test_copy_arbitrates_with_pes(self):
        """The DMA is a real bus master: PE traffic and DMA interleave."""
        machine = build_machine(presets.preset("GBAVIII", 4))
        dma = DmaEngine(machine, chunk_words=16)
        api = SocAPI(machine, "A")
        machine.memory("GLOBAL_SRAM_G").write(0, [7] * 256)
        dma.copy(("GLOBAL_SRAM_G", 0), ("GLOBAL_SRAM_G", 1024), 256)

        def pe_traffic():
            for _ in range(10):
                yield from api.read(("GLOBAL_SRAM_G", 2048), 16)

        machine.pe("A").run(pe_traffic())
        machine.sim.run()
        global_segment = machine.devices["GLOBAL_SRAM_G"].segment
        masters = set(global_segment.stats.per_master)
        assert "DMA0" in masters and api.pe.name in masters
        assert machine.memory("GLOBAL_SRAM_G").read(1024, 3) == [7, 7, 7]

    def test_overlaps_with_pe_compute(self):
        """Offloading the copy frees the PE (the paper's DMA motivation)."""
        def distribution_time(use_dma):
            machine = build_machine(presets.preset("GBAVIII", 4))
            api = SocAPI(machine, "A")
            machine.memory("GLOBAL_SRAM_G").write(0, [1] * 2048)

            def program():
                if use_dma:
                    dma = DmaEngine(machine)
                    done = dma.copy(("GLOBAL_SRAM_G", 0), ("GLOBAL_SRAM_G", 4096), 2048)
                    yield from api.compute(20_000)  # overlapped compute
                    yield done
                else:
                    values = yield from api.read(("GLOBAL_SRAM_G", 0), 2048)
                    yield from api.mem_write(values, ("GLOBAL_SRAM_G", 4096))
                    yield from api.compute(20_000)

            machine.pe("A").run(program())
            machine.sim.run()
            return machine.sim.now

        assert distribution_time(True) < distribution_time(False)

    def test_single_descriptor_at_a_time(self):
        machine = build_machine(presets.preset("GBAVIII", 4))
        dma = DmaEngine(machine)
        dma.copy(("GLOBAL_SRAM_G", 0), ("GLOBAL_SRAM_G", 100), 64)
        second = dma.copy(("GLOBAL_SRAM_G", 0), ("GLOBAL_SRAM_G", 200), 64)
        machine.sim.run()
        with pytest.raises(RuntimeError):
            second.value

    def test_requires_global_bus(self):
        machine = build_machine(presets.preset("BFBA", 4))
        with pytest.raises(ValueError):
            DmaEngine(machine)
