"""Tests for the OFDM transmitter application."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.apps.ofdm import (
    OfdmParameters,
    bit_reverse_permute,
    butterfly_count,
    cost,
    fft,
    ifft,
    ifft_butterflies,
    run_ofdm,
    transmit_packet,
)
from repro.apps.ofdm.transmitter import (
    generate_bits,
    insert_guard,
    normalize,
    symbol_map,
    train_pulse,
)
from repro.options import presets
from repro.sim.fabric import build_machine


class TestFft:
    @pytest.mark.parametrize("n", [2, 8, 64, 256, 2048])
    def test_matches_numpy(self, n):
        rng = np.random.default_rng(n)
        x = rng.normal(size=n) + 1j * rng.normal(size=n)
        np.testing.assert_allclose(ifft(x), np.fft.ifft(x), atol=1e-9)

    def test_forward_matches_numpy(self):
        rng = np.random.default_rng(0)
        x = rng.normal(size=128) + 1j * rng.normal(size=128)
        np.testing.assert_allclose(fft(x), np.fft.fft(x), atol=1e-9)

    def test_fft_ifft_roundtrip(self):
        rng = np.random.default_rng(1)
        x = rng.normal(size=64) + 1j * rng.normal(size=64)
        np.testing.assert_allclose(ifft(fft(x)), x, atol=1e-9)

    def test_bit_reverse_is_involution(self):
        x = np.arange(32, dtype=complex)
        np.testing.assert_array_equal(bit_reverse_permute(bit_reverse_permute(x)), x)

    def test_non_power_of_two_rejected(self):
        with pytest.raises(ValueError):
            ifft(np.zeros(12))

    def test_butterfly_count(self):
        assert butterfly_count(8) == 12  # 4 * 3
        assert butterfly_count(2048) == 1024 * 11

    def test_unnormalized_butterflies(self):
        """The pipeline's group F output is N times numpy's ifft."""
        x = np.arange(16, dtype=complex)
        raw = ifft_butterflies(bit_reverse_permute(x))
        np.testing.assert_allclose(raw / 16, np.fft.ifft(x), atol=1e-9)

    @given(st.integers(min_value=1, max_value=8))
    @settings(max_examples=8, deadline=None)
    def test_parseval_property(self, log_n):
        """Energy is conserved (up to the 1/N convention) by the IFFT."""
        n = 2 ** log_n
        rng = np.random.default_rng(log_n)
        x = rng.normal(size=n) + 1j * rng.normal(size=n)
        time_domain = ifft(x)
        np.testing.assert_allclose(
            np.sum(np.abs(time_domain) ** 2) * n, np.sum(np.abs(x) ** 2), rtol=1e-9
        )


class TestTransmitter:
    def test_symbol_map_unit_power(self):
        bits = generate_bits(OfdmParameters(), 0)
        symbols = symbol_map(bits)
        np.testing.assert_allclose(np.abs(symbols), 1.0, atol=1e-12)

    def test_symbol_map_gray_points(self):
        symbols = symbol_map([0, 0, 0, 1, 1, 0, 1, 1])
        assert len(set(np.round(symbols, 6))) == 4

    def test_symbol_map_needs_even_bits(self):
        with pytest.raises(ValueError):
            symbol_map([1])

    def test_guard_is_cyclic_prefix(self):
        data = np.arange(64, dtype=complex)
        packet = insert_guard(data, 16)
        assert len(packet) == 80
        np.testing.assert_array_equal(packet[:16], data[-16:])
        np.testing.assert_array_equal(packet[16:], data)

    def test_guard_too_long_rejected(self):
        with pytest.raises(ValueError):
            insert_guard(np.zeros(8), 9)

    def test_packet_shape(self):
        params = OfdmParameters()
        packet = transmit_packet(params, 0)
        assert len(packet) == 2560  # 2048 + 512 (Figure 24)

    def test_packets_differ_and_are_deterministic(self):
        params = OfdmParameters()
        p0 = transmit_packet(params, 0)
        p1 = transmit_packet(params, 1)
        assert not np.allclose(p0, p1)
        np.testing.assert_array_equal(p0, transmit_packet(params, 0))

    def test_train_pulse_length(self):
        params = OfdmParameters()
        pulse = train_pulse(params)
        assert len(pulse) == 3 * 2560  # Figure 24: 3 x (guard + data)

    def test_normalize(self):
        x = np.full(8, 8.0 + 0j)
        np.testing.assert_allclose(normalize(x), np.ones(8))

    def test_parameter_validation(self):
        with pytest.raises(ValueError):
            OfdmParameters(data_samples=100).validate()
        with pytest.raises(ValueError):
            OfdmParameters(data_samples=64, guard_samples=64).validate()


class TestCostModel:
    def test_f_stage_dominates(self):
        """Section VI.A.2: the IFFT is the pipeline bottleneck."""
        n = 2048
        f = cost.group_f_instructions(n)
        assert f > cost.group_e_instructions(n)
        assert f > cost.group_g_instructions(n)
        assert f > cost.group_h_instructions(n, 512)

    def test_fpa_ppa_balance(self):
        """E+G+H roughly equals F, giving the paper's ~2x FPA/PPA ratio."""
        n, guard = 2048, 512
        others = (
            cost.group_e_instructions(n)
            + cost.group_g_instructions(n)
            + cost.group_h_instructions(n, guard)
        )
        f = cost.group_f_instructions(n)
        assert 0.7 <= others / f <= 1.3


SMALL = OfdmParameters(data_samples=256, guard_samples=64, packets=2)


class TestSimulatedRuns:
    def _reference(self, params, packets):
        return [transmit_packet(params, index) for index in range(packets)]

    def test_ppa_produces_correct_packets(self):
        machine = build_machine(presets.preset("BFBA", 4))
        result = run_ofdm(machine, "PPA", SMALL)
        assert len(result.outputs) == 2
        for index, packet in enumerate(result.outputs):
            np.testing.assert_allclose(
                packet, transmit_packet(SMALL, index), atol=1e-9
            )

    def test_fpa_produces_correct_packets(self):
        machine = build_machine(presets.preset("GBAVIII", 4))
        result = run_ofdm(machine, "FPA", SMALL)
        assert len(result.outputs) == 2
        produced = {np.round(p, 6).tobytes() for p in result.outputs}
        expected = {
            np.round(transmit_packet(SMALL, i), 6).tobytes() for i in range(2)
        }
        assert produced == expected

    def test_fpa_needs_shared_memory(self):
        machine = build_machine(presets.preset("BFBA", 4))
        with pytest.raises(ValueError):
            run_ofdm(machine, "FPA", SMALL)

    def test_ppa_needs_four_pes(self):
        machine = build_machine(presets.preset("GBAVIII", 2))
        with pytest.raises(ValueError):
            run_ofdm(machine, "PPA", SMALL)

    def test_unknown_style(self):
        machine = build_machine(presets.preset("GBAVIII", 4))
        with pytest.raises(ValueError):
            run_ofdm(machine, "SIMD", SMALL)

    def test_throughput_positive_and_cycles_counted(self):
        machine = build_machine(presets.preset("GBAVIII", 4))
        result = run_ofdm(machine, "FPA", SMALL)
        assert result.cycles > 0
        assert result.throughput_mbps > 0
        assert result.payload_bits == 2 * 256 * 2

    def test_schedule_records_groups(self):
        machine = build_machine(presets.preset("BFBA", 4))
        result = run_ofdm(machine, "PPA", SMALL)
        groups = {group for _ban, group, *_rest in result.schedule}
        assert groups == {"E", "F", "G", "H"}
