"""Tests for the observability layer: tracer, metrics, run telemetry.

The two load-bearing invariants (ISSUE satellites):

* span/stats lockstep -- on a traced GBAVIII preset run, the per-segment
  sums of arbitration and tenure span cycles match the segment's
  ``BusStats`` counters exactly;
* free-when-off -- a tracing-disabled run produces bit-identical
  experiment rows and identical kernel event counts.
"""

import json

import pytest

from repro.apps.ofdm import OfdmParameters, run_ofdm
from repro.obs import Observability
from repro.obs.metrics import (
    DEFAULT_CYCLE_BUCKETS,
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    TimeSeries,
)
from repro.obs.report import (
    RunReport,
    aggregate_run_reports,
    build_run_report,
    drain_recorded,
    record_run,
)
from repro.obs.tracer import (
    NULL_TRACER,
    Tracer,
    chrome_trace_events,
    iter_jsonl_records,
    to_chrome_trace,
    validate_chrome_trace,
    write_chrome_trace,
    write_jsonl,
)
from repro.options import presets
from repro.sim.fabric import build_machine
from repro.sim.stats import BusStats


def _traced_gbaviii_run(packets=2, kernel=None):
    machine = build_machine(presets.preset("GBAVIII", 4), kernel=kernel)
    obs = Observability()
    machine.attach_observability(obs)
    result = run_ofdm(machine, "FPA", OfdmParameters(packets=packets))
    return machine, obs, result


# The lockstep invariants must hold on every scheduler backend -- the
# timing wheel batches bucket pops, but spans/metrics are emitted by the
# fabric, which only observes event *order*.
_KERNELS = ["heap", "wheel"]


class TestSpanStatsLockstep:
    """Satellite (c): span sums must equal the BusStats counters."""

    @pytest.mark.parametrize("kernel", _KERNELS)
    def test_gbaviii_span_sums_match_bus_stats(self, kernel):
        machine, obs, _result = _traced_gbaviii_run(kernel=kernel)
        sums = obs.tracer.span_cycle_sums()
        assert sums, "traced run recorded no transactions"
        for name, segment in machine.segments.items():
            stats = segment.stats
            entry = sums.get(name)
            if entry is None:
                assert stats.transactions == 0
                continue
            assert entry["transactions"] == stats.transactions
            assert entry["arbitration"] == stats.arbitration_cycles
            assert entry["busy"] == stats.busy_cycles
            assert entry["tenure"] == stats.held_cycles

    @pytest.mark.parametrize("kernel", _KERNELS)
    def test_histogram_count_matches_transactions(self, kernel):
        machine, obs, _result = _traced_gbaviii_run(kernel=kernel)
        for name, segment in machine.segments.items():
            hist = obs.registry.get("bus.%s.arb_wait_cycles" % name)
            assert hist is not None
            assert hist.count == segment.stats.transactions

    @pytest.mark.parametrize("kernel", _KERNELS)
    def test_multi_segment_preset_spans_match(self, kernel):
        # GBAVI routes over bridges (multi-segment path in fabric).
        machine = build_machine(presets.preset("GBAVI", 4), kernel=kernel)
        obs = Observability()
        machine.attach_observability(obs)
        run_ofdm(machine, "PPA", OfdmParameters(packets=1))
        sums = obs.tracer.span_cycle_sums()
        for name, segment in machine.segments.items():
            stats = segment.stats
            entry = sums.get(name, {"arbitration": 0, "busy": 0, "transactions": 0})
            assert entry["transactions"] == stats.transactions
            assert entry["arbitration"] == stats.arbitration_cycles
            assert entry["busy"] == stats.busy_cycles


class TestFreeWhenOff:
    """Satellite (c): disabled observability changes nothing."""

    def test_rows_bit_identical_with_and_without_telemetry(self):
        from repro.experiments.table2 import run_table2_case

        case = (3, "GBAVIII", "FPA")
        plain = run_table2_case(case, packets=2)
        drain_recorded()
        traced = run_table2_case(case, packets=2, telemetry=True)
        reports = drain_recorded()
        assert vars(plain) == vars(traced)
        assert len(reports) == 1
        assert reports[0]["name"] == "table2:3 GBAVIII/FPA"

    def test_event_counts_identical(self):
        results = []
        for telemetry in (False, True):
            machine = build_machine(presets.preset("GBAVIII", 4))
            if telemetry:
                machine.attach_observability(Observability())
            run_ofdm(machine, "FPA", OfdmParameters(packets=2))
            results.append((machine.sim.now, machine.sim.events_processed))
        assert results[0] == results[1]

    def test_null_tracer_is_inert(self):
        assert NULL_TRACER.enabled is False
        NULL_TRACER.transaction("s", "m", 0, 1, 2, 4, True)
        NULL_TRACER.hop(0, "b")
        NULL_TRACER.fifo(0, "f", "push", 1, 1)
        NULL_TRACER.instant(0, "l", "n")
        assert len(NULL_TRACER) == 0

    def test_detached_machine_has_no_obs_hooks(self):
        machine = build_machine(presets.preset("GBAVIII", 4))
        assert machine.obs is None
        assert machine.sim.monitor_depth is False
        for segment in machine.segments.values():
            assert segment.obs is None
            assert segment.stats._arb_hist is None


class TestChromeTrace:
    def test_traced_run_exports_valid_chrome_trace(self, tmp_path):
        _machine, obs, _result = _traced_gbaviii_run()
        path = str(tmp_path / "trace.json")
        write_chrome_trace(obs.tracer, path)
        with open(path) as handle:
            document = json.load(handle)
        assert validate_chrome_trace(document) == []
        events = document["traceEvents"]
        spans = [e for e in events if e["ph"] == "X"]
        # one arbitration + one tenure span per transaction
        assert len(spans) == 2 * len(obs.tracer.transactions)
        assert {e["cat"] for e in spans} == {"arbitration", "tenure"}

    def test_lane_metadata_precedes_events(self):
        tracer = Tracer()
        tracer.transaction("BUS_B", "pe0", 0, 3, 10, 4, True)
        tracer.transaction("BUS_A", "pe1", 5, 6, 9, 2, False)
        events = chrome_trace_events(tracer)
        metadata = [e for e in events if e["ph"] == "M"]
        # process_name + one thread_name per lane, name-sorted tids
        names = [e["args"]["name"] for e in metadata if e["name"] == "thread_name"]
        assert names == ["BUS_A", "BUS_B"]
        timed = [e for e in events if e["ph"] != "M"]
        assert [e["ts"] for e in timed] == sorted(e["ts"] for e in timed)

    def test_validator_rejects_malformed_documents(self):
        assert validate_chrome_trace([]) != []
        assert validate_chrome_trace({"traceEvents": 3}) != []
        base = {"ph": "X", "pid": 1, "tid": 1, "name": "x"}
        bad_order = {
            "traceEvents": [
                dict(base, ts=10, dur=1),
                dict(base, ts=5, dur=1),
            ]
        }
        assert any("monotonically" in f for f in validate_chrome_trace(bad_order))
        bad_dur = {"traceEvents": [dict(base, ts=0, dur=-2)]}
        assert any("dur" in f for f in validate_chrome_trace(bad_dur))
        meta_ts = {
            "traceEvents": [{"ph": "M", "pid": 1, "tid": 0, "name": "m", "ts": 1}]
        }
        assert any("metadata" in f for f in validate_chrome_trace(meta_ts))
        missing = {"traceEvents": [{"ph": "X", "ts": 0, "dur": 1}]}
        assert len(validate_chrome_trace(missing)) >= 2

    def test_jsonl_round_trip(self, tmp_path):
        tracer = Tracer()
        tracer.transaction("BUS", "pe0", 0, 2, 8, 4, False, 3)
        tracer.hop(4, "BRIDGE")
        tracer.fifo(5, "FIFO_UP", "push", 2, 2)
        tracer.instant(6, "ARB", "grant pe0", {"waited": 2})
        path = str(tmp_path / "trace.jsonl")
        write_jsonl(tracer, path)
        with open(path) as handle:
            records = [json.loads(line) for line in handle]
        assert len(records) == len(tracer) == 4
        assert {r["type"] for r in records} == {
            "transaction", "bridge_hop", "fifo", "instant",
        }
        txn = next(r for r in records if r["type"] == "transaction")
        assert (txn["start"], txn["acquired"], txn["end"]) == (0, 2, 8)

    def test_clear_resets_tracer(self):
        tracer = Tracer()
        tracer.transaction("B", "m", 0, 1, 2, 1, True)
        tracer.hop(1, "x")
        assert len(tracer) == 2
        tracer.clear()
        assert len(tracer) == 0
        assert list(iter_jsonl_records(tracer)) == []


class TestMetrics:
    def test_counter_and_gauge(self):
        counter = Counter("c")
        counter.inc()
        counter.inc(4)
        assert counter.value == 5
        other = Counter("c")
        other.inc(2)
        counter.merge(other)
        assert counter.as_dict() == {"kind": "counter", "value": 7}
        gauge = Gauge("g")
        gauge.set(3)
        gauge.set(1)
        assert (gauge.value, gauge.max_value) == (1, 3)

    def test_histogram_percentiles_capped_at_max(self):
        hist = Histogram("h")
        for value in (1, 1, 2, 3, 100):
            hist.observe(value)
        assert hist.count == 5
        assert hist.mean() == pytest.approx(107 / 5)
        assert hist.percentile(50) == 2.0
        # p99 lands in the 128-bucket but is capped at the observed max.
        assert hist.percentile(99) == 100.0
        assert hist.percentile(0) == 0.0 or hist.percentile(0) <= 1.0

    def test_histogram_overflow_and_merge(self):
        hist = Histogram("h", buckets=(0, 10))
        hist.observe(5)
        hist.observe(50_000)
        assert hist.counts[-1] == 1
        assert hist.percentile(100) == 50_000.0
        other = Histogram("h", buckets=(0, 10))
        other.observe(3)
        hist.merge(other)
        assert hist.count == 3
        assert hist.min_value == 3
        with pytest.raises(ValueError):
            hist.merge(Histogram("x", buckets=(0, 99)))
        with pytest.raises(ValueError):
            Histogram("bad", buckets=(5, 2))

    def test_time_series_spreads_interval(self):
        series = TimeSeries("t", window=10)
        series.add(5, 25)  # 5 cycles in window 0, 10 in window 1, 5 in window 2
        assert series.series() == [(0, 5, 0.5), (10, 10, 1.0), (20, 5, 0.5)]
        assert series.peak() == 1.0
        other = TimeSeries("t", window=10)
        other.add(0, 5)
        series.merge(other)
        assert series.series()[0] == (0, 10, 1.0)
        with pytest.raises(ValueError):
            series.merge(TimeSeries("x", window=7))

    def test_registry_type_checks_and_sorted_export(self):
        registry = MetricsRegistry()
        registry.counter("z.count").inc()
        registry.histogram("a.wait").observe(2)
        registry.gauge("m.depth").set(4)
        registry.time_series("q.occ", window=64).add(0, 10)
        assert registry.names() == ["a.wait", "m.depth", "q.occ", "z.count"]
        assert list(registry.as_dict()) == registry.names()
        with pytest.raises(TypeError):
            registry.gauge("z.count")
        # same-name same-type returns the existing metric
        assert registry.counter("z.count").value == 1

    def test_registry_merge(self):
        a = MetricsRegistry()
        a.counter("n").inc(2)
        b = MetricsRegistry()
        b.counter("n").inc(3)
        b.histogram("h", buckets=DEFAULT_CYCLE_BUCKETS).observe(1)
        a.merge(b)
        assert a.counter("n").value == 5
        assert a.get("h").count == 1


class TestUtilization:
    """Satellite (a): unclamped ratio + assertion instead of min(1.0, ...)."""

    def test_true_ratio_not_clamped_low(self):
        stats = BusStats("B")
        stats.busy_cycles = 80
        stats.arbitration_cycles = 30
        assert stats.held_cycles == 50
        assert stats.utilization(100) == pytest.approx(0.5)
        assert stats.utilization(0) == 0.0

    def test_assertion_fires_on_double_counted_tenure(self):
        stats = BusStats("B")
        stats.busy_cycles = 300
        stats.arbitration_cycles = 0
        with pytest.raises(AssertionError, match="double-counting"):
            stats.utilization(100)

    def test_contended_run_stays_at_or_below_one(self):
        machine, _obs, _result = _traced_gbaviii_run()
        elapsed = machine.sim.now
        for segment in machine.segments.values():
            util = segment.stats.utilization(elapsed)
            assert 0.0 <= util <= 1.0


class TestRunReport:
    def test_build_run_report_fields(self, tmp_path):
        machine, _obs, _result = _traced_gbaviii_run()
        report = machine.run_report(wall_seconds=0.5, name="traced")
        assert report.name == "traced"
        assert report.simulated_cycles == machine.sim.now
        assert report.events_processed == machine.sim.events_processed
        assert report.peak_queue_depth > 0
        assert report.events_per_second() == pytest.approx(
            report.events_processed / 0.5
        )
        segment_names = [row["name"] for row in report.segments]
        assert segment_names == sorted(machine.segments)
        for row in report.segments:
            assert row["held_cycles"] == row["busy_cycles"] - row["arbitration_cycles"]
            if row["transactions"]:
                assert "arb_wait_p99" in row
        assert any(line for line in report.summary_lines())
        path = str(tmp_path / "report.json")
        report.to_json(path)
        with open(path) as handle:
            loaded = json.load(handle)
        assert loaded["simulated_cycles"] == report.simulated_cycles

    def test_report_without_observability_still_works(self):
        machine = build_machine(presets.preset("GBAVIII", 4))
        run_ofdm(machine, "FPA", OfdmParameters(packets=1))
        report = build_run_report(machine, name="plain")
        assert report.simulated_cycles == machine.sim.now
        for row in report.segments:
            assert "arb_wait_p99" not in row

    def test_record_and_drain(self):
        drain_recorded()
        record_run(RunReport(name="a", simulated_cycles=10))
        record_run({"name": "b", "simulated_cycles": 20})
        drained = drain_recorded()
        assert [r["name"] for r in drained] == ["a", "b"]
        assert drain_recorded() == []

    def test_aggregate_sums_and_maxes(self):
        reports = [
            RunReport(
                name="r1",
                wall_seconds=1.0,
                simulated_cycles=100,
                events_processed=10,
                peak_queue_depth=3,
                segments=[{
                    "name": "B", "transactions": 2, "busy_cycles": 40,
                    "arbitration_cycles": 10, "held_cycles": 30,
                    "elapsed_cycles": 100, "peak_pending_requests": 2,
                }],
            ).as_dict(),
            RunReport(
                name="r2",
                wall_seconds=2.0,
                simulated_cycles=300,
                events_processed=30,
                peak_queue_depth=7,
                segments=[{
                    "name": "B", "transactions": 4, "busy_cycles": 80,
                    "arbitration_cycles": 20, "held_cycles": 60,
                    "elapsed_cycles": 300, "peak_pending_requests": 1,
                }],
            ).as_dict(),
        ]
        aggregate = aggregate_run_reports(reports)
        assert aggregate["runs"] == 2
        assert aggregate["simulated_cycles"] == 400
        assert aggregate["peak_queue_depth"] == 7
        segment = aggregate["segments"][0]
        assert segment["transactions"] == 6
        assert segment["peak_pending_requests"] == 2
        assert segment["utilization"] == pytest.approx(90 / 400)
        assert aggregate["overall_utilization"] == pytest.approx(90 / 400)

    def test_parallel_telemetry_matches_sequential(self):
        from repro.experiments.table2 import TABLE2_CASES, run_table2_telemetry

        cases = TABLE2_CASES[:4]
        drain_recorded()
        rows_seq, tel_seq = run_table2_telemetry(packets=1, cases=cases, jobs=1)
        rows_par, tel_par = run_table2_telemetry(packets=1, cases=cases, jobs=2)
        assert [vars(r) for r in rows_seq] == [vars(r) for r in rows_par]
        reports_seq = [r for t in tel_seq for r in t.run_reports]
        reports_par = [r for t in tel_par for r in t.run_reports]
        assert [r["name"] for r in reports_seq] == [r["name"] for r in reports_par]

        def strip_wall(aggregate):
            return {k: v for k, v in aggregate.items() if k != "wall_seconds"}

        assert strip_wall(aggregate_run_reports(reports_seq)) == strip_wall(
            aggregate_run_reports(reports_par)
        )


class TestCli:
    def test_trace_verb_writes_valid_trace_and_report(self, tmp_path, capsys):
        from repro.cli import main

        trace_path = str(tmp_path / "t.json")
        report_path = str(tmp_path / "r.json")
        code = main([
            "trace", "--preset", "GBAVIII", "--app", "ofdm", "--packets", "1",
            "-o", trace_path, "--format", "both", "--report", report_path,
        ])
        assert code == 0
        with open(trace_path) as handle:
            assert validate_chrome_trace(json.load(handle)) == []
        with open(trace_path + "l") as handle:
            assert all(json.loads(line) for line in handle)
        with open(report_path) as handle:
            report = json.load(handle)
        assert report["simulated_cycles"] > 0
        out = capsys.readouterr().out
        assert "peak queue depth" in out

    def test_validate_module_cli(self, tmp_path, capsys):
        from repro.obs.validate import main as validate_main

        _machine, obs, _result = _traced_gbaviii_run(packets=1)
        path = str(tmp_path / "t.json")
        write_chrome_trace(obs.tracer, path)
        assert validate_main([path]) == 0
        assert "OK" in capsys.readouterr().out
        bad = str(tmp_path / "bad.json")
        with open(bad, "w") as handle:
            json.dump({"traceEvents": [{"ph": "X", "ts": -1}]}, handle)
        assert validate_main([bad]) == 1

    def test_profile_out_writes_pstats_dump(self, tmp_path, capsys):
        import pstats

        from repro.cli import main

        dump = str(tmp_path / "prof.pstats")
        code = main(["profile", "5", "--top", "1", "-o", dump])
        assert code == 0
        stats = pstats.Stats(dump)
        assert stats.total_calls > 0
