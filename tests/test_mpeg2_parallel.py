"""Tests for the parallel MPEG2 decode drivers (shared and relay)."""

import numpy as np
import pytest

from repro.apps.mpeg2.codec import decode_sequence, encode_sequence, synthetic_video
from repro.apps.mpeg2.parallel import (
    MSG_WORDS,
    Mpeg2Result,
    _pack_frame,
    _pack_message,
    _unpack_frame,
    _unpack_message,
    gop_assignment,
    run_mpeg2,
)
from repro.options import presets
from repro.sim.fabric import build_machine


@pytest.fixture(scope="module")
def video():
    return synthetic_video(8)


@pytest.fixture(scope="module")
def reference(video):
    gops, _stats = decode_sequence(encode_sequence(video))
    return {
        (gop.index, index): frame
        for gop in gops
        for index, frame in enumerate(gop.frames)
    }


def assert_frames_match(result, reference):
    assert sorted(result.frames) == sorted(reference)
    for key in reference:
        np.testing.assert_allclose(result.frames[key].y, reference[key].y, atol=0.51)
        np.testing.assert_allclose(result.frames[key].cb, reference[key].cb, atol=0.51)
        np.testing.assert_allclose(result.frames[key].cr, reference[key].cr, atol=0.51)


class TestMessagePacking:
    def test_message_roundtrip(self):
        words = _pack_message(1, 5, b"payload bytes")
        assert len(words) == MSG_WORDS
        kind, tag, payload = _unpack_message(words)
        assert (kind, tag, payload) == (1, 5, b"payload bytes")

    def test_oversized_payload_rejected(self):
        with pytest.raises(ValueError):
            _pack_message(1, 0, b"x" * (4 * MSG_WORDS))

    def test_frame_roundtrip(self, video):
        frame = video[0]
        back = _unpack_frame(_pack_frame(frame))
        np.testing.assert_allclose(back.y, frame.y, atol=0.51)
        assert back.picture_type == frame.picture_type


class TestGopAssignment:
    def test_round_robin(self):
        assignment = gop_assignment(8, ["A", "B", "C", "D"])
        assert assignment == {
            0: "A", 1: "B", 2: "C", 3: "D", 4: "A", 5: "B", 6: "C", 7: "D",
        }

    def test_fewer_gops_than_bans(self):
        assert gop_assignment(2, ["A", "B", "C", "D"]) == {0: "A", 1: "B"}


@pytest.mark.parametrize("preset_name", ["GBAVIII", "HYBRID", "CCBA", "GGBA", "SPLITBA"])
class TestSharedDriver:
    def test_decode_correct(self, preset_name, video, reference):
        machine = build_machine(presets.preset(preset_name, 4))
        result = run_mpeg2(machine, video)
        assert_frames_match(result, reference)
        assert result.gops == 4
        assert result.throughput_mbps > 0


@pytest.mark.parametrize("preset_name", ["BFBA", "GBAVI"])
class TestRelayDriver:
    def test_decode_correct(self, preset_name, video, reference):
        machine = build_machine(presets.preset(preset_name, 4))
        result = run_mpeg2(machine, video)
        assert_frames_match(result, reference)

    def test_requires_four_pes(self, preset_name, video):
        machine = build_machine(presets.preset(preset_name, 3))
        with pytest.raises(ValueError):
            run_mpeg2(machine, video)


class TestSchedules:
    def test_every_ban_decodes_its_gops(self, video):
        machine = build_machine(presets.preset("GBAVIII", 4))
        result = run_mpeg2(machine, video)
        decoded_by = {}
        for ban, gop_index, _start, _end in result.schedule:
            decoded_by[gop_index] = ban
        assert decoded_by == result.gop_to_ban

    def test_relay_penalty_visible(self, video):
        """The relay driver must be measurably slower (Table III's shape)."""
        shared = run_mpeg2(build_machine(presets.preset("GBAVIII", 4)), video)
        relay = run_mpeg2(build_machine(presets.preset("BFBA", 4)), video)
        assert relay.cycles > 1.1 * shared.cycles
