"""Corpus replay gate: every checked-in finding must still be honest.

Loads every entry in the repo's ``corpus/`` directory and re-runs its
composed oracle *fresh* (no artifact cache) on each scheduler backend:
an ``open`` entry must still fail (it passing means the bug was fixed
and the status is stale -- flip it to ``fixed``), a ``fixed`` entry must
still pass (it failing is a regression).  This is the same gate
``repro fuzz`` applies on every run; here it rides the tier-1 suite so a
corpus-visible behaviour change cannot land silently.
"""

import os

import pytest

from repro.fuzz.corpus import STATUSES, load_corpus
from repro.fuzz.oracle import ORACLE_VERSION, evaluate_case
from repro.sim.kernel import KERNEL_BACKENDS

CORPUS_DIR = os.path.join(os.path.dirname(__file__), os.pardir, "corpus")

ENTRIES = load_corpus(CORPUS_DIR)


def _entry_ids():
    return ["%s:%s" % (entry["file"], entry["status"]) for entry in ENTRIES]


def test_corpus_is_present_and_well_formed():
    # The repo ships with real findings (the data-width propagation bug);
    # an empty corpus here means the checkout is broken, not clean.
    assert ENTRIES, "no corpus entries found at %s" % CORPUS_DIR
    keys = [entry["key"] for entry in ENTRIES]
    assert len(set(keys)) == len(keys)
    for entry in ENTRIES:
        assert entry["status"] in STATUSES
        assert entry["file"] == "%s.json" % entry["key"][:12]
        assert entry["verdict"]["oracle_version"] <= ORACLE_VERSION
        # The shrink trace must prove no illegal candidate was evaluated.
        trace = entry["shrink"]["trace"]
        illegal = [
            step for step in trace if step["outcome"].startswith("illegal:")
        ]
        assert len(illegal) == entry["shrink"]["illegal_skipped"]
        assert all("key" not in step for step in illegal)


@pytest.mark.parametrize("kernel", list(KERNEL_BACKENDS))
@pytest.mark.parametrize("entry", ENTRIES, ids=_entry_ids())
def test_corpus_entry_replays_stable(entry, kernel):
    verdict = evaluate_case(entry["case"], kernel=kernel)
    if entry["status"] == "open":
        assert not verdict["ok"], (
            "%s: open finding now passes on the %s kernel -- the bug "
            "appears fixed; flip the entry's status to \"fixed\""
            % (entry["file"], kernel)
        )
        # Same bug, not a different one: the failing-check sets overlap.
        assert set(verdict["failed_checks"]) & set(
            entry["verdict"]["failed_checks"]
        ), "%s: failure signature drifted to %s" % (
            entry["file"],
            verdict["failed_checks"],
        )
    else:
        assert verdict["ok"], (
            "%s: fixed entry fails again on the %s kernel (REGRESSION): %s"
            % (entry["file"], kernel, verdict["failed_checks"])
        )
