"""Tests for the Wire Library (format, model, expansion, built-ins)."""

import pytest

from repro.wiredb import (
    Endpoint,
    WireLibrary,
    WireParseError,
    WireSpec,
    builtin,
    default_wire_library,
    expand_chain,
    parse_wire_text,
    render_wire_text,
)

# Example 7's section, transliterated (MBI_SRAM <-> SRAM_A wires).
EXAMPLE7 = """
%wire ban_bfba
w_addr 20 SRAM_A sram_addr 19 0 MBI_SRAM addr 19 0
w_web 1 SRAM_A sram_web 0 0 MBI_SRAM web 0 0
w_reb 1 SRAM_A sram_reb 0 0 MBI_SRAM reb 0 0
w_csb 8 SRAM_A sram_csb 7 0 MBI_SRAM csb 7 0
w_dq 64 SRAM_A sram_dq 63 0 MBI_SRAM dq 63 0
%endwire
"""

# Example 8's chain section (verbatim shape).
EXAMPLE8 = """
%wire subsys_bfba
w_done_op_cs 2 BAN[A,B,C,D] done_op_cs_dn 1 0 BAN[A,B,C,D] done_op_cs_up 1 0
w_data 64 BAN[A,B,C,D] data_dn 63 0 BAN[A,B,C,D] data_up 63 0
w_fft_ad 12 BAN_B addr_b 11 0 BAN_FFT addr_fft 11 0
%endwire
"""


class TestParser:
    def test_example7_parses(self):
        groups = parse_wire_text(EXAMPLE7)
        section = groups["ban_bfba"]
        assert len(section.specs) == 5
        first = section.specs[0]
        assert first.name == "w_addr"
        assert first.width == 20
        assert first.end1.module == "SRAM_A"
        assert first.end2.port == "addr"

    def test_example8_groups(self):
        section = parse_wire_text(EXAMPLE8)["subsys_bfba"]
        chain = section.specs[0]
        assert chain.end1.is_group
        assert chain.end1.group_members == ["A", "B", "C", "D"]
        assert chain.is_chain
        fft = section.specs[2]
        assert not fft.end1.is_group

    def test_comments_and_blanks(self):
        text = "%wire s\n# comment\n\nw_x 1 A p 0 0 B q 0 0  # trailing\n%endwire"
        section = parse_wire_text(text)["s"]
        assert len(section.specs) == 1

    def test_field_count_enforced(self):
        with pytest.raises(WireParseError):
            parse_wire_text("%wire s\nw_x 1 A p 0 0 B q 0\n%endwire")

    def test_width_validation(self):
        with pytest.raises(WireParseError):
            parse_wire_text("%wire s\nw_x 0 A p 0 0 B q 0 0\n%endwire")

    def test_endpoint_wider_than_wire(self):
        with pytest.raises(ValueError):
            parse_wire_text("%wire s\nw_x 2 A p 3 0 B q 0 0\n%endwire")

    def test_unterminated_section(self):
        with pytest.raises(WireParseError):
            parse_wire_text("%wire s\nw_x 1 A p 0 0 B q 0 0")

    def test_line_outside_section(self):
        with pytest.raises(WireParseError):
            parse_wire_text("w_x 1 A p 0 0 B q 0 0")

    def test_duplicate_section(self):
        with pytest.raises(WireParseError):
            parse_wire_text(EXAMPLE7 + EXAMPLE7)

    def test_member_index_marker(self):
        text = "%wire s\nw_req 4 BAN[A,B,C,D] g_req_b @ @ GLOBAL g_req_b 3 0\n%endwire"
        spec = parse_wire_text(text)["s"].specs[0]
        assert spec.end1.wire_msb == "@"
        resolved = spec.end1.resolve_bits(2)
        assert (resolved.wire_msb, resolved.wire_lsb) == (2, 2)

    def test_render_roundtrip(self):
        groups = parse_wire_text(EXAMPLE8)
        text = render_wire_text(groups)
        again = parse_wire_text(text)
        assert again["subsys_bfba"].specs == groups["subsys_bfba"].specs


class TestChainExpansion:
    def test_ring_of_four(self):
        spec = parse_wire_text(EXAMPLE8)["subsys_bfba"].specs[1]
        wires = expand_chain(spec)
        names = [name for name, _up, _dn in wires]
        assert names == ["w_data_1", "w_data_2", "w_data_3", "w_data_4"]
        # Figure 17a: wire 4 wraps the last BAN back to the first.
        _name, upstream, downstream = wires[-1]
        assert upstream.module == "BAN_D" and downstream.module == "BAN_A"
        assert upstream.port == "data_up" and downstream.port == "data_dn"

    def test_pair_gets_both_directions(self):
        text = "%wire s\nw_d 8 BAN[X,Y] in 7 0 BAN[X,Y] out 7 0\n%endwire"
        spec = parse_wire_text(text)["s"].specs[0]
        wires = expand_chain(spec)
        assert len(wires) == 2
        assert wires[0][1].module == "BAN_X" and wires[0][2].module == "BAN_Y"
        assert wires[1][1].module == "BAN_Y" and wires[1][2].module == "BAN_X"

    def test_non_chain_rejected(self):
        spec = WireSpec("w", 1, Endpoint("A", "p", 0, 0), Endpoint("B", "q", 0, 0))
        with pytest.raises(ValueError):
            expand_chain(spec)


class TestBuiltins:
    @pytest.mark.parametrize("kind", ["bfba", "gbavi", "gbaviii", "hybrid", "splitba"])
    def test_ban_sections_parse(self, kind):
        library = default_wire_library()
        section = library.ban_section(kind)
        assert section.specs
        section.validate()

    def test_global_ban_section_scales(self):
        library = default_wire_library()
        for n in (2, 4, 8):
            section = library.global_ban_section(n)
            req = [s for s in section.specs if s.name == "w_req"][0]
            assert req.width == n

    @pytest.mark.parametrize("kind", ["bfba", "gbavi", "gbaviii", "hybrid", "ggba", "ccba", "splitba"])
    def test_subsystem_sections_parse(self, kind):
        library = default_wire_library()
        section = library.subsystem_section(kind, ["A", "B", "C", "D"])
        assert section.specs

    def test_bfba_subsystem_matches_example8_wires(self):
        """The generated BFBA chain list carries Example 8's six wires."""
        library = default_wire_library()
        section = library.subsystem_section("bfba", ["A", "B", "C", "D"])
        names = {spec.name for spec in section.specs}
        assert names == {
            "w_done_op_cs",
            "w_done_rv_cs",
            "w_ban_web",
            "w_ban_reb",
            "w_fifo_cs",
            "w_data",
        }
        widths = {spec.name: spec.width for spec in section.specs}
        assert widths["w_done_op_cs"] == 2 and widths["w_data"] == 64

    def test_sections_cached_per_shape(self):
        library = default_wire_library()
        a = library.ban_section("bfba", 20)
        b = library.ban_section("bfba", 20)
        c = library.ban_section("bfba", 18)
        assert a is b and a is not c

    def test_unknown_kind(self):
        with pytest.raises(ValueError):
            builtin.ban_section("token_ring")
        with pytest.raises(ValueError):
            builtin.subsystem_section("token_ring", ["A"])
