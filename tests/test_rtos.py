"""Tests for the RTOS kernel, locks, and mailboxes."""

import pytest

from repro.options import presets
from repro.sim.fabric import build_machine
from repro.soc.api import SocAPI
from repro.soc.rtos import LockManager, Mailbox, Rtos, SpinLock, Syscall, TaskState


def make_rtos(preset_name="GBAVIII", ban="A"):
    machine = build_machine(presets.preset(preset_name, 4))
    api = SocAPI(machine, ban)
    return machine, api, Rtos(api)


def run(machine, rtos, ban="A"):
    machine.pe(ban).run(rtos.run(), "rtos")
    machine.sim.run()


class TestScheduling:
    def test_single_task_runs_to_completion(self):
        machine, api, rtos = make_rtos()
        log = []

        def task():
            yield from api.compute(100)
            log.append("done")

        rtos.spawn("t", task())
        run(machine, rtos)
        assert log == ["done"]
        assert rtos.tasks[0].state == TaskState.DONE

    def test_priority_order(self):
        machine, api, rtos = make_rtos()
        order = []

        def task(tag):
            def body():
                order.append(tag)
                yield from api.compute(10)
            return body

        rtos.spawn("low", task("low")(), priority=20)
        rtos.spawn("high", task("high")(), priority=1)
        rtos.spawn("mid", task("mid")(), priority=10)
        run(machine, rtos)
        assert order == ["high", "mid", "low"]

    def test_yield_round_robins_within_priority(self):
        machine, api, rtos = make_rtos()
        order = []

        def task(tag):
            def body():
                for _ in range(3):
                    order.append(tag)
                    yield Syscall("yield")
            return body

        rtos.spawn("a", task("a")())
        rtos.spawn("b", task("b")())
        run(machine, rtos)
        assert order == ["a", "b", "a", "b", "a", "b"]

    def test_sleep_orders_by_wake_time(self):
        machine, api, rtos = make_rtos()
        order = []

        def sleeper(tag, cycles):
            def body():
                yield Syscall("sleep", cycles)
                order.append((tag, machine.sim.now))
            return body

        rtos.spawn("late", sleeper("late", 500)())
        rtos.spawn("early", sleeper("early", 100)())
        run(machine, rtos)
        assert [tag for tag, _t in order] == ["early", "late"]
        assert order[0][1] >= 100 and order[1][1] >= 500

    def test_block_and_wake(self):
        machine, api, rtos = make_rtos()
        log = []

        def blocked():
            yield Syscall("block", "channel")
            log.append("woken@%d" % machine.sim.now)

        def waker():
            yield Syscall("sleep", 200)
            count = rtos.wake("channel")
            log.append("woke %d" % count)

        rtos.spawn("blocked", blocked())
        rtos.spawn("waker", waker())
        run(machine, rtos)
        assert log[0] == "woke 1"
        assert log[1].startswith("woken@")

    def test_context_switches_counted_and_charged(self):
        machine, api, rtos = make_rtos()

        def chatty(tag):
            def body():
                for _ in range(4):
                    yield Syscall("yield")
            return body

        rtos.spawn("a", chatty("a")())
        rtos.spawn("b", chatty("b")())
        run(machine, rtos)
        assert rtos.context_switches >= 8
        assert api.pe.stats.compute_cycles > 0

    def test_bus_access_does_not_switch_tasks(self):
        """A blocking bus transaction stalls the PE; no context switch."""
        machine, api, rtos = make_rtos()
        buffer = api.alloc(64)
        order = []

        def io_task():
            yield from api.mem_write(list(range(64)), buffer)
            order.append("io")

        def cpu_task():
            order.append("cpu")
            yield from api.compute(1)

        rtos.spawn("io", io_task(), priority=1)
        rtos.spawn("cpu", cpu_task(), priority=2)
        run(machine, rtos)
        assert order == ["io", "cpu"]

    def test_exit_syscall(self):
        machine, api, rtos = make_rtos()
        log = []

        def quitter():
            yield Syscall("exit")
            log.append("unreachable")

        rtos.spawn("q", quitter())
        run(machine, rtos)
        assert log == []
        assert rtos.tasks[0].state == TaskState.DONE


class TestSpinLock:
    def test_cross_pe_mutual_exclusion(self):
        machine = build_machine(presets.preset("GGBA", 4))
        apis = {ban: SocAPI(machine, ban) for ban in machine.pe_order}
        lock_address = apis["A"].alloc(1)
        counter = apis["A"].alloc(1)
        lock = SpinLock("L", lock_address)
        in_section = []
        violations = []

        def contender(api):
            def body():
                for _ in range(5):
                    yield from lock.acquire_raw(api)
                    if in_section:
                        violations.append(api.ban)
                    in_section.append(api.ban)
                    values = yield from api.read(counter, 1)
                    yield from api.stall(20)
                    yield from api.mem_write([values[0] + 1], counter)
                    in_section.pop()
                    yield from lock.release(api)
            return body

        for ban, api in apis.items():
            machine.pe(ban).run(contender(api)())
        machine.sim.run()
        assert violations == []
        assert machine.memory(counter[0]).read_word(counter[1]) == 20
        assert lock.acquisitions == 20

    def test_contention_counted(self):
        machine = build_machine(presets.preset("GGBA", 4))
        api_a, api_b = SocAPI(machine, "A"), SocAPI(machine, "B")
        lock = SpinLock("L", api_a.alloc(1))

        def holder():
            yield from lock.acquire_raw(api_a)
            yield from api_a.stall(1000)
            yield from lock.release(api_a)

        def contender():
            yield from api_b.stall(50)
            yield from lock.acquire_raw(api_b)
            yield from lock.release(api_b)

        machine.pe("A").run(holder())
        machine.pe("B").run(contender())
        machine.sim.run()
        assert lock.contentions >= 1


class TestLockManager:
    def test_deterministic_layout_across_pes(self):
        machine = build_machine(presets.preset("GGBA", 4))
        api_a, api_b = SocAPI(machine, "A"), SocAPI(machine, "B")
        base = api_a.alloc(16)
        manager_a = LockManager(api_a, base)
        manager_b = LockManager(api_b, base)
        for name in ("obj0", "obj1", "obj2"):
            assert manager_a.lock(name).address == manager_b.lock(name).address

    def test_capacity_limit(self):
        machine = build_machine(presets.preset("GGBA", 4))
        api = SocAPI(machine, "A")
        manager = LockManager(api, api.alloc(4), capacity=2)
        manager.lock("a")
        manager.lock("b")
        with pytest.raises(RuntimeError):
            manager.lock("c")


class TestMailbox:
    def test_post_then_pend(self):
        machine, api, rtos = make_rtos()
        box = Mailbox(rtos, "m")
        got = []

        def producer():
            yield from api.compute(100)
            yield from box.post("hello")

        def consumer():
            message = yield from box.pend()
            got.append(message)

        rtos.spawn("consumer", consumer())
        rtos.spawn("producer", producer())
        run(machine, rtos)
        assert got == ["hello"]

    def test_capacity_blocks_producer(self):
        machine, api, rtos = make_rtos()
        box = Mailbox(rtos, "m", capacity=1)
        order = []

        def producer():
            yield from box.post(1)
            order.append("posted1")
            yield from box.post(2)
            order.append("posted2")

        def consumer():
            yield Syscall("sleep", 100)
            first = yield from box.pend()
            second = yield from box.pend()
            order.append(("got", first, second))

        rtos.spawn("producer", producer(), priority=1)
        rtos.spawn("consumer", consumer(), priority=2)
        run(machine, rtos)
        assert order == ["posted1", "posted2", ("got", 1, 2)]

    def test_try_pend(self):
        machine, api, rtos = make_rtos()
        box = Mailbox(rtos, "m")
        assert box.try_pend() is None

        def producer():
            yield from box.post(9)

        rtos.spawn("p", producer())
        run(machine, rtos)
        assert box.try_pend() == 9
