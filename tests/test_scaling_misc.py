"""Scaling tests, the generated testbench, and larger-format codec runs."""

import numpy as np
import pytest

from repro import BusSyn, build_machine, presets
from repro.apps.mpeg2.codec import decode_sequence, encode_sequence, psnr, synthetic_video
from repro.apps.ofdm import OfdmParameters, run_ofdm
from repro.hdl import lint_design, parse_design, parse_modules


class TestTestbench:
    def test_testbench_parses_and_lints_with_design(self):
        generated = BusSyn().generate(presets.preset("GBAVIII", 2))
        tb_text = generated.testbench(cycles=100)
        design = parse_design(generated.verilog() + "\n" + tb_text)
        design.top = "tb_%s" % generated.top_name
        errors = [m for m in lint_design(design) if m.severity == "error"]
        assert errors == []

    def test_testbench_drives_every_input(self):
        generated = BusSyn().generate(presets.preset("BFBA", 2))
        tb_text = generated.testbench()
        top = generated.design().modules[generated.top_name]
        for port in top.ports:
            if port.direction == "input":
                assert ".%s(%s)" % (port.name, port.name) in tb_text

    def test_testbench_has_clock_and_finish(self):
        tb_text = BusSyn().generate(presets.preset("GGBA", 2)).testbench(cycles=42)
        assert "always begin" in tb_text
        assert "$finish;" in tb_text
        assert "#420;" in tb_text


class TestScaling:
    def test_ofdm_fpa_scales_with_pes(self):
        """More PEs decode more packets concurrently (up to packet count)."""
        params = OfdmParameters(data_samples=512, guard_samples=128, packets=8)
        four = run_ofdm(build_machine(presets.preset("GBAVIII", 4)), "FPA", params)
        eight = run_ofdm(build_machine(presets.preset("GBAVIII", 8)), "FPA", params)
        assert eight.throughput_mbps > 1.5 * four.throughput_mbps

    def test_splitba_scales_to_six_pes(self):
        params = OfdmParameters(data_samples=256, guard_samples=64, packets=6)
        result = run_ofdm(build_machine(presets.preset("SPLITBA", 6)), "FPA", params)
        assert len(result.outputs) == 6

    def test_generation_scales_to_24_pes_everywhere(self):
        tool = BusSyn()
        for name in ("BFBA", "GBAVI", "GBAVII", "GBAVIII", "HYBRID", "SPLITBA"):
            generated = tool.generate(presets.preset(name, 24))
            assert generated.lint_errors() == [], name
            assert generated.report.pe_count == 24


class TestLargerVideo:
    def test_codec_handles_32x32(self):
        video = synthetic_video(4, width=32, height=32)
        stream = encode_sequence(video)
        gops, stats = decode_sequence(stream)
        decoded = [frame for gop in gops for frame in gop.frames]
        assert stats.blocks == 4 * (16 + 2 * 4)  # 16 luma + 8 chroma blocks
        for original, out in zip(video, decoded):
            assert psnr(original.y, out.y) > 30.0

    def test_non_multiple_of_16_rejected(self):
        from repro.apps.mpeg2.codec import SequenceHeader

        with pytest.raises(ValueError):
            SequenceHeader(width=24, height=16).validate()

    def test_simulated_decode_32x32(self):
        from repro.apps.mpeg2.parallel import run_mpeg2

        video = synthetic_video(8, width=32, height=32)
        machine = build_machine(presets.preset("GBAVIII", 4))
        result = run_mpeg2(machine, video)
        gops, _stats = decode_sequence(encode_sequence(video))
        reference = {
            (gop.index, i): frame for gop in gops for i, frame in enumerate(gop.frames)
        }
        assert sorted(result.frames) == sorted(reference)
        for key in reference:
            np.testing.assert_allclose(result.frames[key].y, reference[key].y, atol=0.51)
