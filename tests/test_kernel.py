"""Tests for the discrete-event simulation kernel."""

import pytest

from repro.sim.kernel import (
    AllOf,
    AnyOf,
    Event,
    Interrupt,
    Process,
    SimulationError,
    Simulator,
    Timeout,
)


@pytest.fixture
def sim():
    return Simulator()


class TestEvent:
    def test_starts_pending(self, sim):
        event = sim.event()
        assert not event.triggered
        assert not event.fired

    def test_succeed_carries_value(self, sim):
        event = sim.event()
        event.succeed(42)
        sim.run()
        assert event.value == 42

    def test_value_before_trigger_raises(self, sim):
        with pytest.raises(SimulationError):
            sim.event().value

    def test_double_trigger_raises(self, sim):
        event = sim.event()
        event.succeed()
        with pytest.raises(SimulationError):
            event.succeed()

    def test_fail_requires_exception(self, sim):
        with pytest.raises(SimulationError):
            sim.event().fail("not an exception")

    def test_fail_reraises_at_value(self, sim):
        event = sim.event()
        event.fail(RuntimeError("boom"))
        sim.run()
        with pytest.raises(RuntimeError):
            event.value

    def test_callback_runs_once(self, sim):
        event = sim.event()
        hits = []
        event.add_callback(lambda e: hits.append(e.value))
        event.succeed("x")
        sim.run()
        assert hits == ["x"]

    def test_late_callback_still_runs(self, sim):
        event = sim.event()
        event.succeed(7)
        sim.run()
        hits = []
        event.add_callback(lambda e: hits.append(e.value))
        sim.run()
        assert hits == [7]


class TestTimeout:
    def test_advances_clock(self, sim):
        timeout = sim.timeout(25)
        sim.run()
        assert sim.now == 25
        assert timeout.fired

    def test_negative_delay_rejected(self, sim):
        with pytest.raises(SimulationError):
            sim.timeout(-1)

    def test_zero_delay_fires_now(self, sim):
        sim.timeout(0)
        sim.run()
        assert sim.now == 0

    def test_carries_value(self, sim):
        timeout = sim.timeout(3, value="done")
        sim.run()
        assert timeout.value == "done"


class TestProcess:
    def test_sequential_timeouts(self, sim):
        trace = []

        def body():
            yield sim.timeout(10)
            trace.append(sim.now)
            yield sim.timeout(5)
            trace.append(sim.now)

        sim.process(body())
        sim.run()
        assert trace == [10, 15]

    def test_integer_yield_means_timeout(self, sim):
        def body():
            yield 7
            return sim.now

        process = sim.process(body())
        sim.run()
        assert process.value == 7

    def test_return_value_becomes_event_value(self, sim):
        def body():
            yield sim.timeout(1)
            return "result"

        process = sim.process(body())
        sim.run()
        assert process.value == "result"

    def test_process_waits_on_process(self, sim):
        def child():
            yield sim.timeout(4)
            return 99

        def parent():
            value = yield sim.process(child())
            return value + 1

        parent_process = sim.process(parent())
        sim.run()
        assert parent_process.value == 100

    def test_bad_yield_raises(self, sim):
        def body():
            yield "not an event"

        sim.process(body())
        with pytest.raises(SimulationError):
            sim.run()

    def test_exception_propagates_to_waiter(self, sim):
        def child():
            yield sim.timeout(1)
            raise ValueError("inner")

        def parent():
            try:
                yield sim.process(child())
            except ValueError:
                return "caught"

        parent_process = sim.process(parent())
        sim.run()
        assert parent_process.value == "caught"

    def test_interrupt_delivery(self, sim):
        def body():
            try:
                yield sim.timeout(100)
            except Interrupt as interrupt:
                return ("interrupted", interrupt.cause, sim.now)

        process = sim.process(body())

        def interrupter():
            yield sim.timeout(10)
            process.interrupt("cause!")

        sim.process(interrupter())
        sim.run()
        assert process.value == ("interrupted", "cause!", 10)

    def test_interrupt_dead_process_is_noop(self, sim):
        def body():
            yield sim.timeout(1)

        process = sim.process(body())
        sim.run()
        process.interrupt()  # should not raise
        assert not process.is_alive

    def test_is_alive(self, sim):
        def body():
            yield sim.timeout(5)

        process = sim.process(body())
        assert process.is_alive
        sim.run()
        assert not process.is_alive


class TestComposites:
    def test_any_of_first_wins(self, sim):
        def body():
            fast = sim.timeout(3, "fast")
            slow = sim.timeout(9, "slow")
            winner = yield sim.any_of([fast, slow])
            return winner.value

        process = sim.process(body())
        sim.run()
        assert process.value == "fast"
        assert sim.now == 9  # the slow timeout still fires

    def test_all_of_waits_for_all(self, sim):
        def body():
            values = yield sim.all_of([sim.timeout(3, "a"), sim.timeout(9, "b")])
            return (sim.now, values)

        process = sim.process(body())
        sim.run()
        assert process.value == (9, ["a", "b"])

    def test_empty_all_of_fires_immediately(self, sim):
        composite = sim.all_of([])
        sim.run()
        assert composite.value == []


class TestScheduler:
    def test_same_cycle_fifo_order(self, sim):
        trace = []
        for tag in "abc":
            sim.timeout(5).add_callback(lambda e, t=tag: trace.append(t))
        sim.run()
        assert trace == ["a", "b", "c"]

    def test_run_until_cycle(self, sim):
        def body():
            while True:
                yield sim.timeout(10)

        sim.process(body())
        sim.run(until=35)
        assert sim.now == 35

    def test_run_until_event(self, sim):
        def body():
            yield sim.timeout(12)
            return "finished"

        process = sim.process(body())
        value = sim.run(until=process)
        assert value == "finished"
        assert sim.now == 12

    def test_run_until_unreachable_event_raises(self, sim):
        event = sim.event()
        sim.timeout(1)
        with pytest.raises(SimulationError):
            sim.run(until=event)

    def test_event_limit_guards_livelock(self, sim):
        def spinner():
            while True:
                yield sim.timeout(1)

        sim.process(spinner())
        with pytest.raises(SimulationError):
            sim.run(limit=100)

    def test_determinism(self):
        def run_once():
            sim = Simulator()
            trace = []

            def worker(tag, period):
                while sim.now < 100:
                    yield sim.timeout(period)
                    trace.append((sim.now, tag))

            sim.process(worker("x", 3))
            sim.process(worker("y", 5))
            sim.run(until=100)
            return trace

        assert run_once() == run_once()

    def test_peek(self, sim):
        assert sim.peek() is None
        sim.timeout(8)
        assert sim.peek() == 8


class TestDeadlineSemantics:
    """run(until=cycle) is exclusive: deadline-cycle events stay queued."""

    def test_deadline_cycle_events_do_not_fire(self, sim):
        trace = []
        sim.timeout(5).add_callback(lambda e: trace.append(sim.now))
        sim.run(until=5)
        assert sim.now == 5
        assert trace == []
        sim.run()  # a subsequent run fires them first, at the deadline cycle
        assert trace == [5]

    def test_split_run_equals_single_run(self):
        def trace_run(split_at):
            sim = Simulator()
            trace = []

            def worker(tag, period):
                while sim.now < 40:
                    yield period
                    trace.append((sim.now, tag))

            sim.process(worker("x", 3))
            sim.process(worker("y", 5))
            if split_at is not None:
                sim.run(until=split_at)
            sim.run(until=100)
            return trace

        reference = trace_run(None)
        # Splitting at a cycle where events are due must not reorder them.
        assert trace_run(15) == reference
        assert trace_run(20) == reference


class TestFastPathEdgeCases:
    """Edge cases of the pooled-timeout / int-yield / slotted-fire paths."""

    def test_any_of_with_already_fired_failed_child(self, sim):
        doomed = sim.event()
        doomed.fail(RuntimeError("boom"))
        sim.run()  # fires with no waiters attached
        assert doomed.fired
        caught = []

        def waiter():
            try:
                yield sim.any_of([doomed, sim.timeout(10)])
            except RuntimeError as exc:
                caught.append(str(exc))

        sim.process(waiter())
        sim.run()
        assert caught == ["boom"]

    def test_late_callback_proxy_carries_value_and_exception(self, sim):
        ok = sim.event()
        ok.succeed(7)
        sim.run()
        bad = sim.event()
        bad.fail(ValueError("nope"))
        sim.run()
        seen = []
        ok.add_callback(lambda e: seen.append(("ok", e.ok, e.value)))
        bad.add_callback(lambda e: seen.append(("bad", e.ok)))
        sim.run()
        assert ("ok", True, 7) in seen
        assert ("bad", False) in seen

    def test_event_fail_propagates_through_all_of(self, sim):
        doomed = sim.event()

        def failer():
            yield 2
            doomed.fail(ValueError("dead"))

        caught = []

        def waiter():
            try:
                yield sim.all_of([doomed, sim.timeout(50)])
            except ValueError as exc:
                caught.append((sim.now, str(exc)))

        sim.process(failer())
        sim.process(waiter())
        sim.run()
        assert caught == [(2, "dead")]

    def test_same_cycle_order_deterministic_under_fast_paths(self):
        def run_once():
            sim = Simulator()
            trace = []

            def int_worker(tag):
                for _ in range(5):
                    yield 1
                    trace.append((sim.now, tag))

            def timeout_worker(tag):
                for _ in range(5):
                    yield sim.timeout(1)
                    trace.append((sim.now, tag))

            def target():
                try:
                    yield 100
                except Interrupt:
                    trace.append((sim.now, "irq"))

            def interrupter(victim):
                yield 3
                victim.interrupt()

            victim = sim.process(target())
            sim.process(int_worker("a"))
            sim.process(timeout_worker("b"))
            sim.process(int_worker("c"))
            sim.process(interrupter(victim))
            sim.run()
            return trace

        first = run_once()
        assert first == run_once()
        # Int-yield and Timeout waiters due the same cycle keep spawn order.
        assert [tag for when, tag in first if when == 1] == ["a", "b", "c"]

    def test_pooled_timeout_reuse_after_interrupt_is_clean(self, sim):
        values = []

        def sleeper():
            try:
                yield 50
            except Interrupt as exc:
                values.append(exc.cause)
            got = yield sim.timeout(1, "fresh")
            values.append(got)

        def poker(victim):
            yield 2
            victim.interrupt("poke")

        victim = sim.process(sleeper())
        sim.process(poker(victim))
        sim.run()
        # The recycled wakeup proxy must not leak a stale value/exception.
        assert values == ["poke", "fresh"]
