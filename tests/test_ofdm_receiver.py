"""Tests for the OFDM receiver (end-to-end modem verification)."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.apps.ofdm import OfdmParameters, transmit_packet
from repro.apps.ofdm.receiver import (
    ChannelModel,
    bit_error_rate,
    demap,
    receive_packet,
    remove_guard,
)
from repro.apps.ofdm.transmitter import generate_bits, symbol_map, train_pulse

PARAMS = OfdmParameters(data_samples=256, guard_samples=64)


class TestDemap:
    def test_inverse_of_symbol_map(self):
        bits = np.array([0, 0, 0, 1, 1, 0, 1, 1])
        np.testing.assert_array_equal(demap(symbol_map(bits)), bits)

    @given(st.lists(st.integers(0, 1), min_size=2, max_size=128).filter(lambda b: len(b) % 2 == 0))
    @settings(max_examples=40, deadline=None)
    def test_roundtrip_property(self, bits):
        np.testing.assert_array_equal(demap(symbol_map(np.array(bits))), bits)


class TestGuard:
    def test_remove_guard(self):
        packet = transmit_packet(PARAMS, 0)
        data = remove_guard(packet, PARAMS.guard_samples)
        assert len(data) == PARAMS.data_samples

    def test_guard_longer_than_packet(self):
        with pytest.raises(ValueError):
            remove_guard(np.zeros(4), 8)


class TestEndToEnd:
    def test_clean_channel_is_error_free(self):
        """The modem property: transmit -> receive recovers every bit."""
        for packet_index in range(3):
            bits = generate_bits(PARAMS, packet_index)
            packet = transmit_packet(PARAMS, packet_index)
            recovered = receive_packet(PARAMS, packet)
            assert bit_error_rate(bits, recovered) == 0.0

    def test_flat_channel_with_known_gain(self):
        gain = 0.7 * np.exp(1j * 1.1)
        bits = generate_bits(PARAMS, 0)
        packet = ChannelModel(gain=gain).apply(transmit_packet(PARAMS, 0))
        recovered = receive_packet(PARAMS, packet, channel_estimate=gain)
        assert bit_error_rate(bits, recovered) == 0.0

    def test_high_snr_error_free_low_snr_degrades(self):
        bits = generate_bits(PARAMS, 0)
        packet = transmit_packet(PARAMS, 0)
        high = receive_packet(PARAMS, ChannelModel(snr_db=25).apply(packet))
        low = receive_packet(PARAMS, ChannelModel(snr_db=0).apply(packet))
        assert bit_error_rate(bits, high) == 0.0
        low_ber = bit_error_rate(bits, low)
        assert 0.0 < low_ber < 0.5  # noisy but far better than chance

    def test_ber_monotone_in_snr(self):
        bits = generate_bits(PARAMS, 0)
        packet = transmit_packet(PARAMS, 0)
        bers = []
        for snr in (0, 6, 12):
            received = receive_packet(PARAMS, ChannelModel(snr_db=snr, seed=7).apply(packet))
            bers.append(bit_error_rate(bits, received))
        assert bers[0] >= bers[1] >= bers[2]

    def test_train_pulse_channel_estimation(self):
        """Figure 24's train pulse supports channel estimation."""
        gain = 0.6 + 0.5j
        channel = ChannelModel(gain=gain, snr_db=25)
        stream = np.concatenate([train_pulse(PARAMS), transmit_packet(PARAMS, 0)])
        received = channel.apply(stream)
        estimate = channel.estimate_from_train(PARAMS, received)
        assert abs(estimate - gain) < 0.05
        bits = generate_bits(PARAMS, 0)
        packet = received[len(train_pulse(PARAMS)):]
        recovered = receive_packet(PARAMS, packet, channel_estimate=estimate)
        # The IFFT-normalized data block carries far less power than the
        # constant-envelope train pulse the SNR was set against, so some
        # residual errors remain -- but well under the decodable waterline.
        assert bit_error_rate(bits, recovered) < 0.15

    def test_wrong_length_rejected(self):
        with pytest.raises(ValueError):
            receive_packet(PARAMS, np.zeros(100, dtype=complex))

    def test_ber_length_mismatch(self):
        with pytest.raises(ValueError):
            bit_error_rate([0, 1], [0])

    def test_delay_shifts_stream(self):
        channel = ChannelModel(delay_samples=7)
        out = channel.apply(np.ones(10))
        assert len(out) == 17
        assert np.all(out[:7] == 0)
