"""Tests for the user-option schema (Figure 18) and presets."""

import pytest

from repro.options import presets
from repro.options.schema import (
    BANSpec,
    BusSpec,
    BusSubsystemSpec,
    BusSystemSpec,
    MemorySpec,
    OptionError,
)


class TestMemorySpec:
    def test_size_math_matches_example9(self):
        """Example 9: width 20 x 64 bits = 8 MB."""
        memory = MemorySpec("SRAM", address_width=20, data_width=64)
        assert memory.size_bytes == 8 * 2**20
        assert memory.size_words == 2 * 2**20

    def test_type_validation(self):
        with pytest.raises(OptionError):
            MemorySpec("FLASH").validate("here")

    def test_width_validation(self):
        with pytest.raises(OptionError):
            MemorySpec("SRAM", address_width=40).validate("here")
        with pytest.raises(OptionError):
            MemorySpec("SRAM", data_width=48).validate("here")

    def test_none_skips_checks(self):
        MemorySpec("NONE", address_width=99).validate("here")


class TestBanSpec:
    def test_cpu_and_non_cpu_exclusive(self):
        """Definition F: a BAN holds at most one PE."""
        ban = BANSpec("X", cpu_type="MPC755", non_cpu_type="DCT")
        with pytest.raises(OptionError):
            ban.validate()

    def test_unknown_cpu(self):
        with pytest.raises(OptionError):
            BANSpec("X", cpu_type="PENTIUM").validate()

    def test_global_resource_needs_memory(self):
        with pytest.raises(OptionError):
            BANSpec("G", cpu_type="NONE", is_global_resource=True).validate()

    def test_has_pe(self):
        assert BANSpec("X", cpu_type="MPC750").has_pe
        assert not BANSpec("G", cpu_type="NONE").has_pe


class TestBusSpec:
    def test_fifo_depth_only_for_bfba(self):
        """User option 3.3 is 'available only for BFBA and Hybrid'."""
        with pytest.raises(OptionError):
            BusSpec("GBAVIII", fifo_depth=64).validate("here")
        BusSpec("BFBA", fifo_depth=64).validate("here")

    def test_bfba_needs_depth(self):
        with pytest.raises(OptionError):
            BusSpec("BFBA").validate("here")

    def test_unknown_type(self):
        with pytest.raises(OptionError):
            BusSpec("TOKENRING").validate("here")

    def test_write_grant_default(self):
        assert BusSpec("GBAVIII", grant_cycles=3).effective_write_grant == 3
        assert BusSpec("CCBA", grant_cycles=5, write_grant_cycles=3).effective_write_grant == 3


class TestSubsystemSpec:
    def test_duplicate_ban_names(self):
        subsystem = BusSubsystemSpec(
            "S",
            bans=[BANSpec("A"), BANSpec("A")],
            buses=[BusSpec("GBAVI")],
        )
        with pytest.raises(OptionError):
            subsystem.validate()

    def test_global_bus_needs_global_ban(self):
        subsystem = BusSubsystemSpec("S", bans=[BANSpec("A")], buses=[BusSpec("GBAVIII")])
        with pytest.raises(OptionError):
            subsystem.validate()

    def test_duplicate_bus_types(self):
        subsystem = BusSubsystemSpec(
            "S", bans=[BANSpec("A")], buses=[BusSpec("GBAVI"), BusSpec("GBAVI")]
        )
        with pytest.raises(OptionError):
            subsystem.validate()

    def test_needs_bus_and_ban(self):
        with pytest.raises(OptionError):
            BusSubsystemSpec("S", bans=[], buses=[BusSpec("GBAVI")]).validate()
        with pytest.raises(OptionError):
            BusSubsystemSpec("S", bans=[BANSpec("A")], buses=[]).validate()


class TestSystemSpec:
    def test_implied_bridge_chain(self):
        spec = presets.splitba(4)
        assert spec.effective_bridges() == [("SUB1", "SUB2")]

    def test_bridge_validation(self):
        spec = presets.splitba(4)
        spec.bridges = [("SUB1", "NOWHERE")]
        with pytest.raises(OptionError):
            spec.validate()
        spec.bridges = [("SUB1", "SUB1")]
        with pytest.raises(OptionError):
            spec.validate()

    def test_pe_count(self):
        assert presets.gbaviii(4).pe_count == 4
        assert presets.splitba(6).pe_count == 6

    def test_total_memory_paper_configuration(self):
        """Section IV.B: all examples have 32 MB total memory."""
        for name in ("BFBA", "GBAVI"):
            assert presets.preset(name, 4).total_memory_bytes == 32 * 2**20


class TestPresets:
    def test_ban_letters_skip_g(self):
        letters = presets.ban_letters(8)
        assert "G" not in letters
        assert letters[:4] == ["A", "B", "C", "D"]

    def test_ban_letters_beyond_alphabet(self):
        letters = presets.ban_letters(30)
        assert len(letters) == 30
        assert len(set(letters)) == 30

    @pytest.mark.parametrize("name", sorted(presets.PRESETS))
    @pytest.mark.parametrize("n", [1, 2, 4, 8])
    def test_presets_validate_at_many_sizes(self, name, n):
        if name == "SPLITBA" and n < 2:
            with pytest.raises(OptionError):
                presets.preset(name, n)
            return
        spec = presets.preset(name, n)
        spec.validate()
        assert spec.pe_count == n

    def test_unknown_preset(self):
        with pytest.raises(OptionError):
            presets.preset("TOKENRING")

    def test_splitba_halves(self):
        spec = presets.splitba(6)
        assert len(spec.subsystems) == 2
        assert len(spec.subsystems[0].pe_bans) == 3
        assert len(spec.subsystems[1].pe_bans) == 3

    def test_ggba_bans_have_no_local_memory(self):
        spec = presets.ggba(4)
        assert all(not ban.memories for ban in spec.subsystems[0].pe_bans)

    def test_ccba_read_write_grants(self):
        bus = presets.ccba(4).subsystems[0].buses[0]
        assert bus.grant_cycles == 5 and bus.effective_write_grant == 3

    def test_cpu_type_parameter(self):
        spec = presets.bfba(4, cpu_type="ARM9TDMI")
        assert all(b.cpu_type == "ARM9TDMI" for b in spec.subsystems[0].pe_bans)
