"""Tests for the Verilog substrate: AST, parser, emitter, lint."""

import pytest

from repro.hdl import (
    Assign,
    Design,
    Instance,
    Module,
    Parameter,
    Port,
    PortConnection,
    Range,
    VerilogParseError,
    Wire,
    elaborate,
    emit_design,
    emit_module,
    lint_design,
    parse_design,
    parse_modules,
)


class TestAst:
    def test_range_width(self):
        assert Range(31, 0).width == 32
        assert Range(0, 0).width == 1
        assert str(Range(7, 4)) == "[7:4]"

    def test_port_validation(self):
        with pytest.raises(ValueError):
            Port("p", "bidir")

    def test_module_lookup(self):
        module = Module("m", ports=[Port("a", "input", Range(3, 0))])
        module.add_wire("w", 8)
        assert module.signal_width("a") == 4
        assert module.signal_width("w") == 8
        assert module.signal_width("nope") is None

    def test_duplicate_wire_rejected(self):
        module = Module("m")
        module.add_wire("w")
        with pytest.raises(ValueError):
            module.add_wire("w")

    def test_design_duplicate_module(self):
        design = Design()
        design.add(Module("m"))
        with pytest.raises(ValueError):
            design.add(Module("m"))

    def test_connection_base_signal(self):
        assert PortConnection("p", "wire_name[3:0]").base_signal == "wire_name"
        assert PortConnection("p", "8'b0").base_signal == ""
        assert PortConnection("p", "{a, b}").base_signal == ""


SAMPLE = """
// leading comment
module leaf(clk, d, q, bus);
  parameter WIDTH = 8;
  input clk;
  input [7:0] d;
  output [7:0] q;
  inout [15:0] bus;
  reg [7:0] q_reg;
  assign q = q_reg;
  assign bus = (q_reg[0]) ? {d, q_reg} : 16'bz;
  always @(posedge clk) begin
    q_reg <= d;
  end
endmodule

module top(clk);
  input clk;
  wire [7:0] a;
  wire [7:0] b;
  wire [15:0] shared;
  leaf #(.WIDTH(8)) u0 (
    .clk(clk),
    .d(a),
    .q(b),
    .bus(shared)
  );
endmodule
"""


class TestParser:
    def test_parses_modules(self):
        modules = parse_modules(SAMPLE)
        assert [m.name for m in modules] == ["leaf", "top"]

    def test_ports_with_ranges(self):
        leaf = parse_modules(SAMPLE)[0]
        assert [p.name for p in leaf.ports] == ["clk", "d", "q", "bus"]
        assert leaf.port("bus").direction == "inout"
        assert leaf.port("bus").width == 16

    def test_parameters(self):
        leaf = parse_modules(SAMPLE)[0]
        assert leaf.parameters[0].name == "WIDTH"
        assert leaf.parameters[0].value == "8"

    def test_regs_become_wires(self):
        leaf = parse_modules(SAMPLE)[0]
        assert leaf.wire("q_reg").width == 8

    def test_assigns_captured(self):
        leaf = parse_modules(SAMPLE)[0]
        assert len(leaf.assigns) == 2
        assert leaf.assigns[0].target == "q"

    def test_always_block_captured_raw(self):
        leaf = parse_modules(SAMPLE)[0]
        assert len(leaf.raw_blocks) == 1
        assert "q_reg <= d" in leaf.raw_blocks[0].text

    def test_instance_connections(self):
        top = parse_modules(SAMPLE)[1]
        instance = top.instances[0]
        assert instance.module == "leaf"
        assert instance.parameter_overrides[0].name == "WIDTH"
        assert instance.connection("bus").expression == "shared"

    def test_comments_stripped(self):
        modules = parse_modules("/* block */ module m(); // line\nendmodule")
        assert modules[0].name == "m"

    def test_memory_declaration(self):
        source = "module m(clk);\ninput clk;\nreg [63:0] store [1023:0];\nendmodule"
        module = parse_modules(source)[0]
        assert module.wire("store").width == 64

    def test_single_statement_always(self):
        source = "module m(clk, q);\ninput clk;\noutput q;\nreg q;\nalways @(posedge clk) q <= ~q;\nendmodule"
        module = parse_modules(source)[0]
        assert len(module.raw_blocks) == 1

    def test_case_block_nesting(self):
        source = """
module m(clk, s, q);
  input clk;
  input [1:0] s;
  output q;
  reg q;
  always @(posedge clk) begin
    case (s)
      2'b00: q <= 1'b0;
      default: q <= 1'b1;
    endcase
  end
endmodule
"""
        module = parse_modules(source)[0]
        assert "endcase" in module.raw_blocks[0].text

    def test_missing_direction_rejected(self):
        with pytest.raises(VerilogParseError):
            parse_modules("module m(a);\nendmodule")

    def test_garbage_rejected(self):
        with pytest.raises(VerilogParseError):
            parse_modules("definitely not verilog")

    def test_unterminated_module(self):
        with pytest.raises(VerilogParseError):
            parse_modules("module m(); input a")


class TestEmitter:
    def test_roundtrip(self):
        design = parse_design(SAMPLE, top="top")
        text = emit_design(design)
        design2 = parse_design(text, top="top")
        assert sorted(design2.modules) == sorted(design.modules)
        leaf2 = design2.modules["leaf"]
        assert [p.name for p in leaf2.ports] == ["clk", "d", "q", "bus"]
        assert len(leaf2.assigns) == 2
        assert len(leaf2.raw_blocks) == 1

    def test_emit_module_header(self):
        module = Module("m", ports=[Port("x", "input")])
        text = emit_module(module)
        assert text.startswith("module m(x);")
        assert text.rstrip().endswith("endmodule")

    def test_parameter_override_emitted(self):
        module = Module("t", ports=[Port("clk", "input")])
        module.instances.append(
            Instance("leaf", "u0", [PortConnection("clk", "clk")], [Parameter("W", "4")])
        )
        assert "leaf #(.W(4)) u0 (" in emit_module(module)

    def test_top_emitted_last(self):
        design = parse_design(SAMPLE, top="top")
        text = emit_design(design)
        assert text.index("module leaf") < text.index("module top")


class TestLint:
    def test_clean_design(self):
        design = parse_design(SAMPLE, top="top")
        assert [m for m in lint_design(design) if m.severity == "error"] == []

    def test_undefined_module(self):
        design = parse_design("module t(c);\ninput c;\nghost u0 (.p(c));\nendmodule")
        errors = [m for m in lint_design(design) if m.severity == "error"]
        assert any("undefined module" in e.text for e in errors)

    def test_unknown_port(self):
        source = SAMPLE.replace(".d(a)", ".nonexistent(a)")
        errors = [m for m in lint_design(parse_design(source)) if m.severity == "error"]
        assert any("no port" in e.text for e in errors)

    def test_width_mismatch(self):
        source = SAMPLE.replace("wire [7:0] a;", "wire [3:0] a;")
        errors = [m for m in lint_design(parse_design(source)) if m.severity == "error"]
        assert any("width mismatch" in e.text for e in errors)

    def test_undeclared_signal_in_connection(self):
        source = SAMPLE.replace(".q(b)", ".q(phantom)").replace("wire [7:0] b;", "")
        errors = [m for m in lint_design(parse_design(source)) if m.severity == "error"]
        assert any("undeclared" in e.text for e in errors)

    def test_uppercase_literal_base_width_checked(self):
        # 4'HF is 4 bits against the 8-bit d port; the old _LITERAL_RE only
        # knew lowercase bases, so the width check was silently skipped.
        source = SAMPLE.replace(".d(a)", ".d(4'HF)")
        errors = [m for m in lint_design(parse_design(source)) if m.severity == "error"]
        assert any("width mismatch" in e.text for e in errors)

    def test_signed_literal_base_width_checked(self):
        source = SAMPLE.replace(".d(a)", ".d(4'sb1010)")
        errors = [m for m in lint_design(parse_design(source)) if m.severity == "error"]
        assert any("width mismatch" in e.text for e in errors)

    def test_uppercase_literal_matching_width_is_clean(self):
        source = SAMPLE.replace(".d(a)", ".d(8'HFF)")
        assert [m for m in lint_design(parse_design(source)) if m.severity == "error"] == []

    def test_uppercase_base_letter_not_misread_as_signal(self):
        # The base letter of 8'HFF must not be reported as an undeclared
        # signal named "H" (nor the digits as identifiers).
        source = SAMPLE.replace(".d(a)", ".d(8'HFF)")
        errors = [m for m in lint_design(parse_design(source)) if m.severity == "error"]
        assert not any("undeclared" in e.text for e in errors)

    def test_concat_width_with_uppercase_literal(self):
        # {a[3:0], 4'HF} is 8 bits: concatenation widths are verified now
        # that sized uppercase literals report their declared width.
        clean = SAMPLE.replace(".d(a)", ".d({a[3:0], 4'HF})")
        assert [m for m in lint_design(parse_design(clean)) if m.severity == "error"] == []
        broken = SAMPLE.replace(".d(a)", ".d({a[3:0], 8'HFF})")
        errors = [m for m in lint_design(parse_design(broken)) if m.severity == "error"]
        assert any("width mismatch" in e.text for e in errors)

    def test_dangling_port_is_warning(self):
        source = SAMPLE.replace(".d(a),", "")
        messages = lint_design(parse_design(source))
        warnings = [m for m in messages if m.severity == "warning"]
        assert any("dangling" in w.text for w in warnings)
        assert not [m for m in messages if m.severity == "error"]

    def test_double_driver(self):
        source = """
module drv(o);
  output o;
  assign o = 1'b0;
endmodule
module t(x);
  output x;
  drv u0 (.o(x));
  drv u1 (.o(x));
endmodule
"""
        errors = [m for m in lint_design(parse_design(source)) if m.severity == "error"]
        assert any("drivers" in e.text for e in errors)

    def test_missing_top(self):
        design = parse_design(SAMPLE, top="nonexistent")
        errors = [m for m in lint_design(design) if m.severity == "error"]
        assert any("top module" in e.text for e in errors)

    def test_elaborate_counts(self):
        design = parse_design(SAMPLE, top="top")
        counts = elaborate(design)
        assert counts == {"top": 1, "leaf": 1}

    def test_elaborate_requires_top(self):
        with pytest.raises(ValueError):
            elaborate(parse_design(SAMPLE))
