"""Error-path tests: malformed inputs must fail loudly, early, and helpfully.

Covers the option-file parser's line-numbered diagnostics, schema
validation of out-of-range values, the netlist builder's candidate-listing
errors, BAN classification failures, the runner's case-failure wrapper,
and the CLI's non-zero exits on bad input.
"""

import pytest

from repro.cli import main
from repro.core.bangen import ban_kind
from repro.core.netlist import NetlistBuilder, NetlistError
from repro.experiments.runner import CaseExecutionError, run_cases
from repro.hdl.ast import Module, Port, Range
from repro.options.inputfile import parse_option_file, parse_option_text
from repro.options.schema import BANSpec, BusSpec, BusSubsystemSpec, OptionError

VALID_HEADER = """
bus_system 1
subsystem S
  bus GBAVIII
    address_width 32
    data_width 64
"""


class TestParserDiagnostics:
    def test_non_integer_count_names_line_and_token(self):
        text = "bus_system 1\nsubsystem S\n  bans four\n"
        with pytest.raises(OptionError, match=r"line 3: 'bans' expects an integer BAN count, got 'four'"):
            parse_option_text(text)

    def test_missing_argument_names_the_line(self):
        text = "bus_system 1\nsubsystem S\n  bus\n"
        with pytest.raises(OptionError, match=r"line 3: 'bus' expects a bus type"):
            parse_option_text(text)

    def test_unknown_key_reports_line_and_full_line(self):
        text = "bus_system 1\nsubsystem S\n  frobnicate 3\n"
        with pytest.raises(OptionError, match=r"line 3: unknown option 'frobnicate'"):
            parse_option_text(text)

    def test_line_numbers_skip_comments_and_blanks(self):
        text = "# header\n\nbus_system 1\n# note\nsubsystem S\n  cpu MPC755\n"
        with pytest.raises(OptionError, match=r"line 6: 'cpu' outside a ban block"):
            parse_option_text(text)

    @pytest.mark.parametrize(
        "line,expected",
        [
            ("  bus GBAVIII", "'bus' outside a subsystem"),
            ("  ban A", "'ban' outside a subsystem"),
            ("  arbiter fcfs", "'arbiter' outside a bus block"),
            ("  data_width 64", "'data_width' outside a bus block"),
            ("  memory SRAM 20 64", "'memory' outside a ban block"),
        ],
    )
    def test_out_of_context_keys(self, line, expected):
        with pytest.raises(OptionError, match=expected):
            parse_option_text("bus_system 1\n%s\n" % line)

    def test_memory_with_bad_width_token(self):
        text = VALID_HEADER + "  ban A\n    cpu MPC755\n    memory SRAM xx 64\n"
        with pytest.raises(OptionError, match=r"'memory' expects an integer address width, got 'xx'"):
            parse_option_text(text)

    def test_subsystem_count_mismatch(self):
        text = "bus_system 2\nsubsystem ONLY\n  bus GBAVIII\n  ban A\n    cpu MPC755\n    memory SRAM 20 64\n"
        with pytest.raises(OptionError, match="declares 2 subsystems but 1"):
            parse_option_text(text)

    def test_file_errors_carry_the_path(self, tmp_path):
        bad = tmp_path / "bad.txt"
        bad.write_text("bus_system 1\nsubsystem S\n  bans nope\n")
        with pytest.raises(OptionError, match=r"bad\.txt: line 3"):
            parse_option_file(str(bad))


class TestSchemaValidation:
    def test_address_width_out_of_range(self):
        text = "bus_system 1\nsubsystem S\n  bus GBAVIII\n    address_width 8\n  ban A\n    cpu MPC755\n    memory SRAM 20 64\n"
        with pytest.raises(OptionError, match=r"address width 8 outside \[16, 64\]"):
            parse_option_text(text)

    def test_data_width_not_in_menu(self):
        text = "bus_system 1\nsubsystem S\n  bus GBAVIII\n    data_width 48\n  ban A\n    cpu MPC755\n    memory SRAM 20 64\n"
        with pytest.raises(OptionError, match=r"data width 48 not in \(32, 64, 128\)"):
            parse_option_text(text)

    def test_bfba_requires_fifo_depth(self):
        text = "bus_system 1\nsubsystem S\n  bus BFBA\n    fifo_depth 0\n  ban A\n    cpu MPC755\n    memory SRAM 20 64\n"
        with pytest.raises(OptionError, match="BFBA requires a positive Bi-FIFO depth"):
            parse_option_text(text)


class TestNetlistErrors:
    @staticmethod
    def _leaf(name="leaf"):
        return Module(name, ports=[Port("clk", "input"), Port("data", "output", Range(7, 0))])

    def test_duplicate_instance_name(self):
        builder = NetlistBuilder("top")
        builder.add_instance("u0", self._leaf(), "u0")
        with pytest.raises(NetlistError, match="duplicate logical instance 'u0'"):
            builder.add_instance("u0", self._leaf(), "u0_again")

    def test_unknown_module_lists_candidates(self):
        builder = NetlistBuilder("top")
        builder.add_instance("cbi_a", self._leaf(), "u_cbi_a")
        builder.add_instance("cbi_b", self._leaf(), "u_cbi_b")
        with pytest.raises(NetlistError) as excinfo:
            builder.connect("w_clk", 1, [("cbi_c", "clk", 0, 0)])
        message = str(excinfo.value)
        assert "unknown module 'cbi_c'" in message
        assert "known modules: cbi_a, cbi_b" in message
        assert "did you mean" in message

    def test_unknown_port_lists_the_modules_ports(self):
        builder = NetlistBuilder("top")
        builder.add_instance("u0", self._leaf(), "u0")
        with pytest.raises(NetlistError) as excinfo:
            builder.connect("w_clk", 1, [("u0", "clok", 0, 0)])
        message = str(excinfo.value)
        assert "has no port 'clok'" in message
        assert "did you mean 'clk'?" in message
        assert "its ports: clk, data" in message


class TestBanClassification:
    def test_unknown_bus_mix_lists_supported_mixes(self):
        ban = BANSpec(name="A", cpu_type="MPC755", memories=[])
        subsystem = BusSubsystemSpec(
            name="S", bans=[ban], buses=[BusSpec(bus_type="MYSTERY")]
        )
        with pytest.raises(OptionError) as excinfo:
            ban_kind(ban, subsystem)
        message = str(excinfo.value)
        assert "cannot classify BAN A under bus mix {MYSTERY}" in message
        assert "supported mixes" in message
        assert "GBAVIII" in message


def _boom(case):
    raise ValueError("bad case payload %d" % case)


class TestRunnerErrors:
    def test_case_failure_is_wrapped_with_the_case(self):
        with pytest.raises(CaseExecutionError) as excinfo:
            run_cases(_boom, [41], jobs=1)
        message = str(excinfo.value)
        assert "case 41 failed" in message
        assert "ValueError" in message
        assert "bad case payload 41" in message
        assert excinfo.value.case == 41
        assert isinstance(excinfo.value.__cause__, ValueError)


class TestCliExits:
    def test_malformed_options_file_exits_2_on_stderr(self, tmp_path, capsys):
        bad = tmp_path / "bad.txt"
        bad.write_text("bus_system 1\nsubsystem S\n  bans four\n")
        code = main(["generate", "--options", str(bad), "--out", str(tmp_path / "gen")])
        assert code == 2
        captured = capsys.readouterr()
        assert "repro: option error" in captured.err
        assert "line 3" in captured.err
        assert "'four'" in captured.err

    def test_missing_options_file_exits_2(self, tmp_path, capsys):
        code = main(
            ["simulate", "--options", str(tmp_path / "nope.txt"), "--app", "ofdm"]
        )
        assert code == 2
        assert "nope.txt" in capsys.readouterr().err
