"""Tests for memory models (SRAM / DRAM)."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.sim.memory import Dram, Memory, Sram, make_memory


class TestSram:
    def test_read_back(self):
        sram = Sram("m", 1024)
        sram.write(10, [1, 2, 3])
        assert sram.read(10, 3) == [1, 2, 3]

    def test_uninitialized_reads_zero(self):
        sram = Sram("m", 16)
        assert sram.read(0, 4) == [0, 0, 0, 0]

    def test_word_masking(self):
        sram = Sram("m", 4)
        sram.write_word(0, 0x1_FFFF_FFFF)
        assert sram.read_word(0) == 0xFFFFFFFF

    def test_bounds_check(self):
        sram = Sram("m", 8)
        with pytest.raises(IndexError):
            sram.read(7, 2)
        with pytest.raises(IndexError):
            sram.write(-1, [0])

    def test_constant_latency(self):
        sram = Sram("m", 64, access_cycles=2)
        assert sram.burst_latency(0, 10, False) == 2
        assert sram.burst_latency(50, 1, True) == 2

    def test_counters(self):
        sram = Sram("m", 64)
        sram.write(0, [1, 2])
        sram.read(0, 2)
        assert sram.writes == 2 and sram.reads == 2

    def test_clear(self):
        sram = Sram("m", 8)
        sram.write_word(3, 9)
        sram.clear()
        assert sram.read_word(3) == 0

    def test_zero_size_rejected(self):
        with pytest.raises(ValueError):
            Sram("m", 0)

    @given(st.lists(st.integers(min_value=0, max_value=2**32 - 1), min_size=1, max_size=64))
    @settings(max_examples=30, deadline=None)
    def test_roundtrip_property(self, values):
        sram = Sram("m", 256)
        sram.write(0, values)
        assert sram.read(0, len(values)) == values


class TestDram:
    def test_row_miss_then_hit(self):
        dram = Dram("d", 4096, row_words=256, hit_cycles=2, miss_cycles=6)
        assert dram.burst_latency(0, 8, False) == 6  # cold row
        assert dram.burst_latency(16, 8, False) == 2  # same row
        assert dram.burst_latency(300, 8, False) == 6  # new row

    def test_burst_spanning_rows(self):
        dram = Dram("d", 4096, row_words=256, hit_cycles=2, miss_cycles=6)
        latency = dram.burst_latency(250, 16, False)  # rows 0 and 1, both cold
        assert latency == 12
        assert dram.row_misses == 2

    def test_row_stats(self):
        dram = Dram("d", 1024, row_words=128)
        dram.burst_latency(0, 1, False)
        dram.burst_latency(1, 1, False)
        assert dram.row_hits == 1 and dram.row_misses == 1

    def test_data_independent_of_rows(self):
        dram = Dram("d", 1024)
        dram.write(700, [5, 6])
        assert dram.read(700, 2) == [5, 6]

    def test_bad_row_words(self):
        with pytest.raises(ValueError):
            Dram("d", 64, row_words=0)


class TestFactory:
    def test_make_sram(self):
        memory = make_memory("SRAM", "m", 128)
        assert isinstance(memory, Sram)
        assert memory.kind == "SRAM"

    def test_make_dram_case_insensitive(self):
        assert isinstance(make_memory("dram", "m", 128), Dram)

    def test_unknown_type(self):
        with pytest.raises(ValueError):
            make_memory("FLASH", "m", 128)
