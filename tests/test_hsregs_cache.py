"""Tests for handshake registers, shared variables, and the L1 cache model."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.sim.cache import Cache, mpc755_dcache, mpc755_icache
from repro.sim.hsregs import HandshakeRegisters, SharedVariables
from repro.sim.kernel import Simulator
from repro.sim.memory import Sram


@pytest.fixture
def sim():
    return Simulator()


class TestHandshakeRegisters:
    def test_initial_values(self, sim):
        block = HandshakeRegisters(sim, "hs", done_op=1, done_rv=0)
        assert block.done_op == 1 and block.done_rv == 0

    def test_write_read(self, sim):
        block = HandshakeRegisters(sim, "hs")
        block.write("DONE_OP", 1)
        assert block.read("DONE_OP") == 1

    def test_one_bit_masking(self, sim):
        block = HandshakeRegisters(sim, "hs")
        block.write("DONE_RV", 3)
        assert block.read("DONE_RV") == 1

    def test_unknown_register(self, sim):
        block = HandshakeRegisters(sim, "hs")
        with pytest.raises(KeyError):
            block.read("REQ")

    def test_wait_for_value_change(self, sim):
        block = HandshakeRegisters(sim, "hs")
        event = block.wait_for("DONE_OP", 1)
        assert not event.triggered
        block.write("DONE_OP", 1)
        assert event.triggered

    def test_wait_for_already_satisfied(self, sim):
        block = HandshakeRegisters(sim, "hs", done_op=1)
        event = block.wait_for("DONE_OP", 1)
        assert event.triggered

    def test_wait_for_wrong_value_stays_pending(self, sim):
        block = HandshakeRegisters(sim, "hs")
        event = block.wait_for("DONE_OP", 1)
        block.write("DONE_RV", 1)  # other register
        assert not event.triggered

    def test_trace_records_changes(self, sim):
        block = HandshakeRegisters(sim, "hs", trace=True)
        block.write("DONE_OP", 1)
        block.write("DONE_OP", 1)  # no change: not traced
        block.write("DONE_OP", 0)
        assert [(reg, val) for _t, reg, val in block.trace] == [
            ("DONE_OP", 1),
            ("DONE_OP", 0),
        ]


class TestSharedVariables:
    def test_slots_are_stable_and_distinct(self):
        memory = Sram("m", 128)
        shared = SharedVariables(memory, 100)
        a = shared.slot("A")
        b = shared.slot("B")
        assert a != b
        assert shared.slot("A") == a

    def test_peek_poke(self):
        memory = Sram("m", 128)
        shared = SharedVariables(memory, 64)
        shared.poke("FLAG", 1)
        assert shared.peek("FLAG") == 1
        assert memory.read_word(shared.slot("FLAG")) == 1


class TestCache:
    def test_cold_miss_then_hit(self):
        cache = Cache("c", size_bytes=1024, line_bytes=32, ways=2)
        hit, fill, writeback = cache.access(0)
        assert (hit, fill, writeback) == (False, 8, 0)
        hit, fill, writeback = cache.access(4)  # same line
        assert (hit, fill, writeback) == (True, 0, 0)

    def test_lru_eviction(self):
        cache = Cache("c", size_bytes=128, line_bytes=32, ways=2)  # 2 sets
        line = cache.line_words
        sets = cache.sets
        # Three lines mapping to set 0: indices 0, sets, 2*sets.
        cache.access(0)
        cache.access(sets * line)
        cache.access(0)  # refresh line 0
        cache.access(2 * sets * line)  # evicts line 'sets' (LRU)
        assert cache.access(0)[0] is True
        assert cache.access(sets * line)[0] is False

    def test_dirty_writeback(self):
        cache = Cache("c", size_bytes=128, line_bytes=32, ways=1)
        line = cache.line_words
        cache.access(0, write=True)
        _hit, _fill, writeback = cache.access(cache.sets * line)  # evicts dirty
        assert writeback == cache.line_words
        assert cache.stats.writebacks == 1

    def test_clean_eviction_no_writeback(self):
        cache = Cache("c", size_bytes=128, line_bytes=32, ways=1)
        cache.access(0, write=False)
        _hit, _fill, writeback = cache.access(cache.sets * cache.line_words)
        assert writeback == 0

    def test_flush_returns_dirty_words(self):
        cache = Cache("c", size_bytes=256, line_bytes=32, ways=2)
        cache.access(0, write=True)
        cache.access(64, write=False)
        assert cache.flush() == cache.line_words
        assert cache.access(0)[0] is False  # invalidated

    def test_hit_rate(self):
        cache = Cache("c", size_bytes=1024, line_bytes=32, ways=2)
        for _ in range(10):
            cache.access(0)
        assert cache.stats.hit_rate == pytest.approx(0.9)

    def test_geometry_validation(self):
        with pytest.raises(ValueError):
            Cache("c", size_bytes=1000, line_bytes=32, ways=3)

    def test_mpc755_shapes(self):
        icache = mpc755_icache()
        dcache = mpc755_dcache()
        for cache in (icache, dcache):
            assert cache.size_bytes == 32 * 1024
            assert cache.ways == 8
            assert cache.line_words == 8

    def test_sequential_streaming_miss_rate(self):
        """A stream longer than the cache misses once per line, every pass."""
        cache = Cache("c", size_bytes=1024, line_bytes=32, ways=2)
        span_words = 2 * 1024 // 4  # twice the capacity
        for _pass in range(3):
            for address in range(0, span_words, cache.line_words):
                cache.access(address)
        lines = span_words // cache.line_words
        assert cache.stats.misses == 3 * lines  # no reuse survives

    @given(st.lists(st.integers(min_value=0, max_value=4095), min_size=1, max_size=300))
    @settings(max_examples=25, deadline=None)
    def test_determinism_property(self, addresses):
        def run():
            cache = Cache("c", size_bytes=512, line_bytes=32, ways=2)
            return [cache.access(a, write=(a % 3 == 0)) for a in addresses]

        assert run() == run()

    @given(st.lists(st.integers(min_value=0, max_value=63), min_size=1, max_size=100))
    @settings(max_examples=25, deadline=None)
    def test_small_working_set_always_fits(self, addresses):
        """Addresses within one cache-capacity window never conflict-miss
        more than the number of distinct lines."""
        cache = Cache("c", size_bytes=2048, line_bytes=32, ways=4)
        for address in addresses:
            cache.access(address)
        distinct_lines = len({a // cache.line_words for a in addresses})
        assert cache.stats.misses == distinct_lines
