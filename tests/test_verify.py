"""Tests for the cross-layer verification pass (repro.verify).

Covers both halves of the tentpole -- structural netlist<->machine
equivalence and runtime protocol assertion monitors -- plus the negative
cases the acceptance criteria call out: a deliberately corrupted netlist
(dropped wire) and a deliberately broken arbiter (double grant) must each
be caught.
"""

import copy

import pytest

from repro.apps.ofdm import OfdmParameters, run_ofdm
from repro.cli import main
from repro.core.busyn import BusSyn
from repro.faults.chaos import run_chaos_case
from repro.options import presets
from repro.sim.arbiter import FCFSArbiter, RoundRobinArbiter
from repro.sim.fabric import build_machine
from repro.sim.fifo import HardwareFifo
from repro.sim.kernel import Simulator
from repro.verify import (
    VERIFY_ARCHITECTURES,
    Finding,
    ProtocolMonitor,
    ProtocolViolationError,
    compare_graphs,
    graph_from_design,
    graph_from_machine,
    run_verify,
    run_verify_case,
)


def _graphs(arch, pe_count=4):
    spec = presets.preset(arch, pe_count)
    design = BusSyn().generate(spec).design()
    return graph_from_design(design), graph_from_machine(build_machine(spec))


class TestFinding:
    def test_str_carries_cycle_and_category(self):
        finding = Finding("error", "fifo", "F.up", "overflow", cycle=42)
        assert str(finding) == "[error] F.up (fifo) @cycle 42: overflow"
        assert Finding("error", "structure", "m", "x").as_dict()["cycle"] is None


class TestStructuralEquivalence:
    @pytest.mark.parametrize("arch", VERIFY_ARCHITECTURES)
    def test_netlist_matches_machine(self, arch):
        netlist_graph, machine_graph = _graphs(arch)
        findings = compare_graphs(netlist_graph, machine_graph)
        assert findings == [], "\n".join(str(f) for f in findings)

    def test_graph_shapes_bfba(self):
        netlist_graph, machine_graph = _graphs("BFBA")
        for graph in (netlist_graph, machine_graph):
            # Four per-PE segments, a ring of four FIFO and four HS links.
            assert len(graph.segments) == 4
            assert sum(graph.fifo_links.values()) == 4
            assert sum(graph.hs_links.values()) == 4
            assert not graph.bridges
            assert graph.pes == {
                "MPC755_A",
                "MPC755_B",
                "MPC755_C",
                "MPC755_D",
            }

    def test_graph_shapes_splitba(self):
        netlist_graph, machine_graph = _graphs("SPLITBA")
        for graph in (netlist_graph, machine_graph):
            shared = [
                node for node in graph.segments.values() if len(node.masters) == 2
            ]
            assert len(shared) == 2
            assert sum(graph.bridges.values()) == 1
            for node in shared:
                assert node.arbiter_policy == "fcfs"
                assert node.n_masters == 2

    def test_dropped_wire_is_caught(self):
        """Acceptance: a corrupted netlist (dropped wire) must be detected."""
        spec = presets.preset("GBAVI", 4)
        # BusSyn memoizes per spec repr; mutate a private deep copy so the
        # cached design other tests see stays intact.
        design = copy.deepcopy(BusSyn().generate(spec).design())
        ban = next(
            module
            for name, module in design.modules.items()
            if name.startswith("ban_gbavi")
        )
        mbi = next(inst for inst in ban.instances if inst.name == "u_mbi0")
        mbi.connection("dh").expression = "w_dangling"
        findings = compare_graphs(
            graph_from_design(design),
            graph_from_machine(build_machine(spec)),
        )
        assert any(
            "MBI0.dh" in str(f) and "w_dangling" in str(f) for f in findings
        ), findings

    def test_missing_machine_bridge_is_caught(self):
        spec = presets.preset("GBAVI", 4)
        machine = build_machine(spec)
        machine.bridges.pop()
        findings = compare_graphs(
            graph_from_design(BusSyn().generate(spec).design()),
            graph_from_machine(machine),
        )
        assert any("bridge count differs" in str(f) for f in findings), findings

    def test_arbiter_policy_divergence_is_caught(self):
        spec = presets.preset("GBAVIII", 4)
        machine = build_machine(spec)
        shared = next(
            segment
            for segment in machine.segments.values()
            if segment.name.startswith("GLOBAL_BUS")
        )
        shared.arbiter = RoundRobinArbiter(machine.sim, shared.arbiter.name)
        findings = compare_graphs(
            graph_from_design(BusSyn().generate(spec).design()),
            graph_from_machine(machine),
        )
        assert any("arbiter policy differs" in str(f) for f in findings), findings


class _DoubleGrantArbiter(FCFSArbiter):
    """FCFS with the owner guard dropped: grants while the bus is held."""

    __slots__ = ()

    def _dispatch(self):
        if not self._pending:
            return
        master, grant, _requested_at = self._pending.pop(0)
        self.owner = master
        self.grants += 1
        if self.monitor is not None:
            self.monitor.on_grant(self, master, queued=True)
        grant.succeed(master)


class TestProtocolMonitor:
    def test_double_grant_is_caught(self):
        """Acceptance: a broken arbiter (double grant) must be detected."""
        sim = Simulator()
        arbiter = _DoubleGrantArbiter(sim, "broken")
        monitor = ProtocolMonitor()
        monitor.watch_arbiter(arbiter)
        arbiter.request("A")  # immediate grant, A owns the bus
        with pytest.raises(ProtocolViolationError) as excinfo:
            arbiter.request("B")  # broken dispatch grants over A
        assert excinfo.value.finding.category == "grant-onehot"
        assert "double grant" in str(excinfo.value)

    def test_clean_contended_sequence_has_no_findings(self):
        sim = Simulator()
        arbiter = FCFSArbiter(sim, "arb")
        monitor = ProtocolMonitor()
        monitor.watch_arbiter(arbiter)
        arbiter.request("A")
        grant_b = arbiter.request("B")
        arbiter.cancel("B", grant_b)  # withdrawn REQ is accounted
        arbiter.release("A")
        assert monitor.finalize() == []
        assert monitor.grants_observed == 1
        assert monitor.cancels_observed == 1

    def test_starved_request_reported_at_finalize(self):
        sim = Simulator()
        arbiter = FCFSArbiter(sim, "arb")
        monitor = ProtocolMonitor()
        monitor.watch_arbiter(arbiter)
        arbiter.request("A")
        arbiter.request("B")  # still queued when the run "ends"
        findings = monitor.finalize()
        categories = {finding.category for finding in findings}
        assert "req-gnt" in categories  # B never granted, never withdrawn
        assert "grant-onehot" in categories  # A never released

    def test_cancel_without_request_is_violation(self):
        sim = Simulator()
        arbiter = FCFSArbiter(sim, "arb")
        monitor = ProtocolMonitor()
        monitor.watch_arbiter(arbiter)
        with pytest.raises(ProtocolViolationError):
            monitor.on_cancel(arbiter, "Z")

    def test_release_by_non_owner_is_violation(self):
        sim = Simulator()
        arbiter = FCFSArbiter(sim, "arb")
        monitor = ProtocolMonitor()
        monitor.watch_arbiter(arbiter)
        with pytest.raises(ProtocolViolationError):
            monitor.on_release(arbiter, "X")

    def test_fifo_overflow_underflow_conservation(self):
        sim = Simulator()
        fifo = HardwareFifo(sim, "F", depth_words=4)

        monitor = ProtocolMonitor()
        monitor.watch_fifo(fifo)
        with pytest.raises(ProtocolViolationError, match="overflow"):
            monitor.on_fifo_push(fifo, 5)

        monitor = ProtocolMonitor()
        monitor.watch_fifo(fifo)
        with pytest.raises(ProtocolViolationError, match="underflow"):
            monitor.on_fifo_pop(fifo, 1)

        monitor = ProtocolMonitor()
        monitor.watch_fifo(fifo)
        # Hook claims 2 words arrived but the hardware count stayed 0.
        with pytest.raises(ProtocolViolationError, match="conservation"):
            monitor.on_fifo_push(fifo, 2)

    def test_fifo_real_traffic_is_clean(self):
        sim = Simulator()
        fifo = HardwareFifo(sim, "F", depth_words=4)
        monitor = ProtocolMonitor()
        monitor.watch_fifo(fifo)
        fifo.push([1, 2, 3])
        assert fifo.pop(2) == [1, 2]
        fifo.push([4, 5, 6])
        assert monitor.findings == []

    def test_transfer_without_grant_is_violation(self):
        machine = build_machine(presets.preset("BFBA", 2))
        monitor = machine.attach_monitors()
        segment = next(iter(machine.segments.values()))
        with pytest.raises(ProtocolViolationError, match="without holding"):
            monitor.on_transfer_open(segment, "GHOST")

    def test_close_without_open_is_violation(self):
        machine = build_machine(presets.preset("BFBA", 2))
        monitor = machine.attach_monitors()
        segment = next(iter(machine.segments.values()))
        with pytest.raises(ProtocolViolationError, match="never opened"):
            monitor.on_transfer_close(segment, "GHOST")

    def test_bridge_disabled_crossing_is_violation(self):
        machine = build_machine(presets.preset("GBAVI", 4))
        monitor = machine.attach_monitors()
        bridge = machine.bridges[0]
        bridge.enabled = False
        with pytest.raises(ProtocolViolationError, match="disabled"):
            monitor.on_bridge_cross(bridge, None)

    def test_bridge_conservation_checked_at_finalize(self):
        machine = build_machine(presets.preset("GBAVI", 4))
        monitor = machine.attach_monitors(fail_fast=False)
        bridge = machine.bridges[0]
        bridge.crossings += 1  # hardware counted a crossing the hooks missed
        findings = monitor.finalize()
        assert any("forwarding conservation" in str(f) for f in findings)


class TestMonitoredRuns:
    @pytest.mark.parametrize(
        "arch,backend",
        [("BFBA", "heap"), ("GBAVIII", "wheel"), ("SPLITBA", "heap")],
    )
    def test_verify_case_green(self, arch, backend):
        row = run_verify_case((arch, backend), packets=1)
        assert row["structural_findings"] == []
        assert row["runtime_findings"] == []
        # Free-when-off: the monitored run is bit-identical to baseline.
        assert row["monitored_cycles"] == row["cycles"]
        assert row["grants"] > 0 and row["transfers"] > 0

    def test_monitored_run_bit_identical(self):
        spec = presets.preset("GBAVI", 4)
        baseline = run_ofdm(build_machine(spec), "PPA", OfdmParameters(packets=1))
        machine = build_machine(spec)
        monitor = machine.attach_monitors()  # fail_fast: violations raise
        monitored = run_ofdm(machine, "PPA", OfdmParameters(packets=1))
        assert monitored.cycles == baseline.cycles
        assert monitor.finalize() == []

    def test_run_verify_summary_shape(self):
        summary = run_verify(archs=["GGBA"], backends=("heap",), packets=1)
        assert summary["ok"] is True
        assert summary["failures"] == []
        assert len(summary["cases"]) == 1
        row = summary["cases"][0]
        assert row["arch"] == "GGBA" and row["backend"] == "heap"

    def test_run_verify_rejects_unknown_arch(self):
        with pytest.raises(ValueError, match="unknown architecture"):
            run_verify(archs=["NOPE"])


class TestChaosIntegration:
    def test_empty_mode_arms_monitors_and_stays_identical(self):
        baseline = run_chaos_case(("GBAVIII", "FPA", "heap", "baseline"), packets=2)
        empty = run_chaos_case(("GBAVIII", "FPA", "heap", "empty"), packets=2)
        assert empty["invariant_failures"] == []
        assert empty["cycles"] == baseline["cycles"]


class TestCliVerify:
    def test_verify_verb_smoke(self, capsys, tmp_path):
        out = tmp_path / "verify.json"
        code = main(
            [
                "verify",
                "--arch",
                "GBAVIII",
                "--backend",
                "heap",
                "--packets",
                "1",
                "-o",
                str(out),
            ]
        )
        assert code == 0
        stdout = capsys.readouterr().out
        assert "verify sweep" in stdout and "GBAVIII" in stdout
        assert "structurally equivalent" in stdout
        assert out.exists()
