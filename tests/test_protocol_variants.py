"""Tests for protocol variants and experiment shape-checkers."""

import pytest

from repro.experiments import table2, table3, table4
from repro.experiments.table2 import Table2Row, check_table2_shape
from repro.experiments.table3 import Table3Row, check_table3_shape
from repro.experiments.table4 import Table4Row, check_table4_shape
from repro.options import presets
from repro.sim.fabric import build_machine
from repro.soc.api import SocAPI
from repro.soc.handshake import GbaviChannel, ThreeRegisterChannel


class TestThreeRegisterChannel:
    def _run(self, channel_cls, transfers=5):
        machine = build_machine(presets.preset("GBAVI", 4))
        channel = channel_cls(SocAPI(machine, "A"), SocAPI(machine, "B"), 16)
        payload = list(range(16))
        received = []

        def sender():
            for _ in range(transfers):
                yield from channel.send(payload)

        def receiver():
            for _ in range(transfers):
                values = yield from channel.recv()
                received.append(list(values))

        machine.pe("A").run(sender())
        machine.pe("B").run(receiver())
        machine.sim.run()
        assert received == [payload] * transfers
        return machine.sim.now, channel

    def test_data_integrity(self):
        _cycles, channel = self._run(ThreeRegisterChannel)
        assert channel.transfers == 5

    def test_read_request_steps_traced(self):
        _cycles, channel = self._run(ThreeRegisterChannel, transfers=1)
        labels = [label for label, _cycle in channel.trace]
        assert "1:assert read request" in labels
        assert "1:consume read request" in labels
        # Condition (1) precedes condition (2) per transfer.
        assert labels.index("1:consume read request") < labels.index("2:assert DONE_OP")

    def test_costs_more_than_two_register(self):
        """Dropping the read-request register is a measurable win -- the
        design decision section IV.C argues for."""
        three_reg, _ = self._run(ThreeRegisterChannel)
        two_reg, _ = self._run(GbaviChannel)
        assert three_reg > two_reg

    def test_request_register_allocated_once(self):
        machine = build_machine(presets.preset("GBAVI", 4))
        a, b = SocAPI(machine, "A"), SocAPI(machine, "B")
        first = ThreeRegisterChannel(a, b, 8)
        second = ThreeRegisterChannel(a, b, 8)
        assert first.req_device == second.req_device


def _t2row(case, bus, style, mbps):
    return Table2Row(case, bus, style, mbps, 1000, table2.TABLE2_PAPER[(bus, style)])


class TestShapeCheckers:
    """The benchmark assertions themselves must catch wrong shapes."""

    def test_good_table2_passes(self):
        rows = [
            _t2row(case, bus, style, mbps)
            for (case, bus, style), mbps in zip(
                table2.TABLE2_CASES,
                [1.5, 1.40, 3.2, 1.48, 3.2, 1.5, 3.25, 2.85, 1.45],
            )
        ]
        assert check_table2_shape(rows) == []

    def test_table2_catches_wrong_winner(self):
        rows = [
            _t2row(case, bus, style, mbps)
            for (case, bus, style), mbps in zip(
                table2.TABLE2_CASES,
                [1.5, 1.40, 9.9, 1.48, 3.2, 1.5, 3.25, 2.85, 1.45],  # GBAVIII wins
            )
        ]
        failures = check_table2_shape(rows)
        assert any("best case" in f for f in failures)

    def test_table2_catches_fpa_regression(self):
        rows = [
            _t2row(case, bus, style, mbps)
            for (case, bus, style), mbps in zip(
                table2.TABLE2_CASES,
                [1.5, 1.40, 1.0, 1.48, 3.2, 1.5, 3.25, 2.85, 1.45],  # FPA < PPA
            )
        ]
        assert any("FPA should beat PPA" in f for f in check_table2_shape(rows))

    def test_table3_catches_frame_mismatch(self):
        rows = [
            Table3Row(10 + i, bus, mbps, 1000, table3.TABLE3_PAPER[bus], bus != "BFBA")
            for i, (bus, mbps) in enumerate(
                [("BFBA", 0.9), ("GBAVI", 0.89), ("GBAVIII", 1.53),
                 ("HYBRID", 1.54), ("CCBA", 1.36)]
            )
        ]
        assert any("mismatch" in f for f in check_table3_shape(rows))

    def test_table3_good_passes(self):
        rows = [
            Table3Row(10 + i, bus, mbps, 1000, table3.TABLE3_PAPER[bus], True)
            for i, (bus, mbps) in enumerate(
                [("BFBA", 0.9), ("GBAVI", 0.89), ("GBAVIII", 1.53),
                 ("HYBRID", 1.54), ("CCBA", 1.36)]
            )
        ]
        assert check_table3_shape(rows) == []

    def test_table4_catches_missing_reduction(self):
        rows = [
            Table4Row(15, "GGBA", 1_000_000, 41, 0, table4.TABLE4_PAPER["GGBA"]),
            Table4Row(16, "SPLITBA", 950_000, 41, 0, table4.TABLE4_PAPER["SPLITBA"]),
        ]
        assert any("reduction" in f for f in check_table4_shape(rows))

    def test_table4_catches_incomplete_tasks(self):
        rows = [
            Table4Row(15, "GGBA", 1_000_000, 41, 0, table4.TABLE4_PAPER["GGBA"]),
            Table4Row(16, "SPLITBA", 590_000, 12, 0, table4.TABLE4_PAPER["SPLITBA"]),
        ]
        assert any("tasks" in f for f in check_table4_shape(rows))
