"""Architecture fuzzer tests: generator legality, oracle, shrinker, corpus.

Covers the seeded sampler (determinism, legality, seed-0 honesty), the
greedy auto-shrinker (zero illegal evaluations, ladder fixpoint, budget
cap), the corpus store (round trip, validation, byte-identical rewrite),
the fuzz loop's determinism contract (equal fingerprints across jobs and
cache states, equal ledger record hashes), the acceptance-criterion
injected bug (a deliberately wrong arbiter grant latency must be found
and shrunk to <= 2 PEs), coverage aggregation in ``repro report``, and
the unknown-architecture exit-2 paths of ``repro chaos``/``repro
verify``.
"""

import json

import pytest

from repro.cli import main
from repro.dse.spec import normalize_options
from repro.fuzz.corpus import (
    STATUSES,
    build_entry,
    entry_filename,
    load_corpus,
    validate_entry,
    write_entry,
)
from repro.fuzz.generator import FuzzProfile, case_key, sample_cases
from repro.fuzz.oracle import ORACLE_CHECKS, evaluate_case, oracle_cache_key
from repro.fuzz.runner import fuzz_fingerprint, run_fuzz
from repro.fuzz.shrink import shrink_case
from repro.obs.ledger import build_record
from repro.obs.query import check_regressions, coverage_rows

#: A mostly-legal, all-passing pocket of the space: shared-memory bus at
#: the hardware's native 64-bit width (the open corpus findings show any
#: other width fails structurally), small PE counts, no multi-subsystem.
CHEAP_PROFILE = FuzzProfile(
    buses=("GBAVIII",),
    pes=(1, 2),
    data_widths=(64,),
    fifo_depths=(4,),
    arbiter_policies=("fcfs",),
    styles=("FPA",),
    packets=(1,),
    fault_scales=(1,),
)


class TestGenerator:
    def test_same_seed_same_cases(self):
        first = sample_cases(11, 8)
        second = sample_cases(11, 8)
        assert first == second

    def test_different_seeds_differ(self):
        cases_a, _, _ = sample_cases(0, 8)
        cases_b, _, _ = sample_cases(1, 8)
        assert [c["key"] for c in cases_a] != [c["key"] for c in cases_b]

    def test_seed_zero_is_a_real_seed(self):
        # Regression guard for the falsy-zero audit: seed 0 must be its
        # own stream, not silently swapped for some other default.
        cases, _, _ = sample_cases(0, 4)
        assert len(cases) == 4
        again, _, _ = sample_cases(0, 4)
        assert cases == again

    def test_every_sampled_case_is_legal_and_unique(self):
        cases, skipped, draws = sample_cases(3, 20)
        assert len(cases) == 20
        keys = [case["key"] for case in cases]
        assert len(set(keys)) == len(keys)
        for case in cases:
            config, reason = normalize_options(case["options"])
            assert reason is None, reason
            # Canonical: re-normalizing is a no-op on the option surface.
            assert config.options() == case["options"]
        assert draws == len(cases) + sum(skipped.values())

    def test_skip_reasons_use_the_dse_vocabulary(self):
        _, skipped, _ = sample_cases(3, 20)
        known = {
            "fpa-needs-shared-memory",
            "ppa-needs-4-pes",
            "splitba-needs-2-pes",
            "subsystems-exceed-pes",
            "duplicate",
        }
        assert set(skipped) <= known

    def test_case_key_covers_fault_dimensions(self):
        case = {"options": {"bus": "GBAVIII"}, "fault_seed": 1, "fault_scale": 1}
        other = dict(case, fault_seed=2)
        assert case_key(case) != case_key(other)

    def test_profile_hash_tracks_contents(self):
        assert FuzzProfile().hash() != CHEAP_PROFILE.hash()


def _fake_verdict(case, ok):
    return {
        "ok": ok,
        "failed_checks": [] if ok else ["structural"],
        "options": case["options"],
    }


class TestShrink:
    def _fake_evaluate(self, log):
        # Stand-in oracle: "bug" reproduces whenever fifo_depth >= 16.
        # Every evaluated candidate is asserted legal, which is the
        # acceptance criterion the trace must also prove.
        def evaluate(case):
            config, reason = normalize_options(case["options"])
            assert reason is None, "shrinker evaluated an illegal case: %s" % reason
            log.append(case["key"])
            return _fake_verdict(case, ok=case["options"]["fifo_depth"] < 16)

        return evaluate

    def _failing_case(self):
        raw = {
            "bus": "BFBA",
            "pes": 4,
            "data_width": 128,
            "fifo_depth": 1024,
            "arbiter_policy": "priority",
            "app": "ofdm",
            "style": "PPA",
            "packets": 2,
        }
        config, reason = normalize_options(raw)
        assert reason is None
        case = {"options": config.options(), "fault_seed": 9, "fault_scale": 2}
        case["key"] = case_key(case)
        return case

    def test_zero_illegal_candidates_are_evaluated(self):
        log = []
        case = self._failing_case()
        result = shrink_case(
            case,
            verdict=_fake_verdict(case, ok=False),
            evaluate=self._fake_evaluate(log),
        )
        # BFBA is PPA-pinned at 4 PEs with no shared memory: the pes
        # ladder (1, 2, 3) and the style ladder (FPA) are all illegal and
        # must be skipped without touching the oracle.
        assert result["illegal_skipped"] >= 4
        illegal_steps = [
            step
            for step in result["trace"]
            if step["outcome"].startswith("illegal:")
        ]
        assert len(illegal_steps) == result["illegal_skipped"]
        assert result["evaluations"] == len(log)
        evaluated = {
            step.get("key")
            for step in result["trace"]
            if step["outcome"] == "adopted"
        }
        assert evaluated <= {key[:12] for key in log}

    def test_shrinks_to_the_minimal_failing_config(self):
        log = []
        case = self._failing_case()
        result = shrink_case(
            case,
            verdict=_fake_verdict(case, ok=False),
            evaluate=self._fake_evaluate(log),
        )
        options = result["case"]["options"]
        # fifo 4 passes (below the fake bug's threshold), 16 still fails:
        # greedy must land exactly on the boundary, and every other
        # dimension on its floor.
        assert options["fifo_depth"] == 16
        assert options["data_width"] == 32
        assert options["arbiter_policy"] == "fcfs"
        assert options["packets"] == 1
        assert result["case"]["fault_scale"] == 0
        assert result["case"]["fault_seed"] == 0
        assert not result["exhausted"]
        outcomes = {step["outcome"] for step in result["trace"]}
        assert "passed" in outcomes and "adopted" in outcomes

    def test_trace_records_every_attempt(self):
        log = []
        case = self._failing_case()
        result = shrink_case(
            case,
            verdict=_fake_verdict(case, ok=False),
            evaluate=self._fake_evaluate(log),
        )
        for step in result["trace"]:
            assert {"dimension", "from", "to", "outcome"} <= set(step)

    def test_budget_exhaustion_is_reported(self):
        log = []
        case = self._failing_case()
        result = shrink_case(
            case,
            verdict=_fake_verdict(case, ok=False),
            evaluate=self._fake_evaluate(log),
            max_evaluations=1,
        )
        assert result["exhausted"]
        assert result["evaluations"] == 1

    def test_passing_case_is_rejected(self):
        case = self._failing_case()
        with pytest.raises(ValueError, match="needs a failing case"):
            shrink_case(case, verdict=_fake_verdict(case, ok=True))


class TestCorpus:
    def _entry(self):
        case = {
            "options": {"bus": "GBAVIII", "pes": 1},
            "fault_seed": 0,
            "fault_scale": 0,
        }
        case["key"] = case_key(case)
        shrunk = {
            "case": case,
            "verdict": {"ok": False, "failed_checks": ["structural"]},
            "trace": [],
            "adopted": 0,
            "evaluations": 1,
            "illegal_skipped": 0,
            "exhausted": False,
        }
        return build_entry(shrunk, original_case=case, found_by={"seed": 1})

    def test_round_trip(self, tmp_path):
        entry = self._entry()
        path = write_entry(entry, str(tmp_path))
        assert path.endswith(entry_filename(entry))
        loaded = load_corpus(str(tmp_path))
        assert len(loaded) == 1
        assert loaded[0]["key"] == entry["key"]
        assert loaded[0]["file"] == entry_filename(entry)

    def test_rewrite_is_byte_identical(self, tmp_path):
        entry = self._entry()
        path = write_entry(entry, str(tmp_path))
        first = open(path, "rb").read()
        write_entry(entry, str(tmp_path))
        assert open(path, "rb").read() == first

    def test_missing_directory_is_empty_corpus(self, tmp_path):
        assert load_corpus(str(tmp_path / "nope")) == []

    def test_non_json_files_are_ignored(self, tmp_path):
        write_entry(self._entry(), str(tmp_path))
        (tmp_path / "README.md").write_text("docs\n")
        assert len(load_corpus(str(tmp_path))) == 1

    def test_validation_rejects_bad_status(self):
        entry = self._entry()
        entry["status"] = "wontfix"
        with pytest.raises(ValueError, match="status 'wontfix'"):
            validate_entry(entry)
        assert "wontfix" not in STATUSES

    def test_validation_rejects_missing_keys(self):
        entry = self._entry()
        del entry["verdict"]
        with pytest.raises(ValueError, match="missing key"):
            validate_entry(entry)


class TestFuzzLoop:
    def test_deterministic_across_jobs_and_cache_states(self, tmp_path):
        corpus = str(tmp_path / "corpus")
        cache = str(tmp_path / "cache")
        kwargs = dict(
            seed=2,
            budget=3,
            kernel="heap",
            profile=CHEAP_PROFILE,
            corpus_dir=corpus,
            cache_dir=cache,
            write_findings=False,
        )
        cold = run_fuzz(jobs=1, **kwargs)
        warm = run_fuzz(jobs=2, **kwargs)
        assert cold["sampled"] == 3
        assert fuzz_fingerprint(cold) == fuzz_fingerprint(warm)
        # The second run must be all cache hits (same cases, same oracle).
        assert warm["cache_stats"]["hits"] == 3
        assert warm["cache_stats"]["misses"] == 0
        # ...and the ledger record hash must not see the difference.
        record = lambda summary: build_record(
            "fuzz", options={"seed": 2}, summary=summary, rev="test"
        )
        assert record(cold)["hash"] == record(warm)["hash"]

    def test_seed_zero_and_one_are_different_runs(self, tmp_path):
        kwargs = dict(
            budget=2,
            jobs=1,
            kernel="heap",
            profile=CHEAP_PROFILE,
            corpus_dir=str(tmp_path / "corpus"),
            cache_dir=str(tmp_path / "cache"),
            write_findings=False,
        )
        zero = run_fuzz(seed=0, **kwargs)
        one = run_fuzz(seed=1, **kwargs)
        assert zero["seed"] == 0
        assert fuzz_fingerprint(zero) != fuzz_fingerprint(one)

    def test_injected_arbiter_latency_bug_is_found_and_shrunk(
        self, tmp_path, monkeypatch
    ):
        from repro.sim.bus import BusSegment

        original = BusSegment.__init__

        def bumped(self, *args, **kwargs):
            original(self, *args, **kwargs)
            self.grant_cycles += 1
            self.write_grant_cycles += 1

        monkeypatch.setattr(BusSegment, "__init__", bumped)
        profile = FuzzProfile(
            buses=("GBAVIII",),
            pes=(4, 8),
            data_widths=(64,),
            fifo_depths=(4,),
            arbiter_policies=("fcfs",),
            styles=("FPA",),
            packets=(1,),
            fault_scales=(1,),
        )
        summary = run_fuzz(
            seed=5,
            budget=2,
            jobs=1,
            kernel="heap",
            profile=profile,
            corpus_dir=str(tmp_path / "corpus"),
            cache_dir=str(tmp_path / "cache"),
        )
        assert summary["failures"] == 2
        assert summary["new_findings"] == 1
        finding = summary["findings"][0]
        assert finding["failed_checks"] == ["structural"]
        assert "arbiter grant cycles" in "".join(
            finding["verdict"]["checks"]["structural"]
        )
        # Acceptance criterion: the minimal repro is <= 2 PEs (at 1 PE
        # the netlist has no arbiter module, so the latency lie becomes
        # unobservable and the shrinker must stop at the boundary).
        assert finding["case"]["options"]["pes"] <= 2
        # The finding landed in the corpus and replays as unstable-free.
        entries = load_corpus(str(tmp_path / "corpus"))
        assert len(entries) == 1
        assert entries[0]["status"] == "open"
        assert entries[0]["shrink"]["trace"]

    def test_replay_flags_a_stale_open_entry(self, tmp_path):
        # An "open" entry whose bug no longer reproduces (here: it never
        # did -- a passing case planted as open) must surface as now_fixed
        # and flip the run to a nonzero-exit summary.  (2 PEs, not 1: the
        # 1-PE GBAVIII netlist collides its global/CPU bus master sets,
        # a real open finding of its own.)
        raw = {
            "bus": "GBAVIII",
            "pes": 2,
            "data_width": 64,
            "arbiter_policy": "fcfs",
            "app": "ofdm",
            "style": "FPA",
            "packets": 1,
        }
        config, reason = normalize_options(raw)
        assert reason is None
        case = {"options": config.options(), "fault_seed": 0, "fault_scale": 1}
        case["key"] = case_key(case)
        verdict = evaluate_case(case, kernel="heap")
        assert verdict["ok"]
        shrunk = {
            "case": case,
            "verdict": verdict,
            "trace": [],
            "adopted": 0,
            "evaluations": 0,
            "illegal_skipped": 0,
            "exhausted": False,
        }
        corpus = str(tmp_path / "corpus")
        write_entry(
            build_entry(shrunk, original_case=case, found_by={"seed": 2}), corpus
        )
        summary = run_fuzz(
            seed=2,
            budget=1,
            jobs=1,
            kernel="heap",
            profile=CHEAP_PROFILE,
            corpus_dir=corpus,
            cache_dir=str(tmp_path / "cache"),
            write_findings=False,
        )
        assert summary["replay"]["entries"] == 1
        assert summary["replay"]["now_fixed"] == 1
        assert summary["replay"]["regressions"] == 0

    def test_oracle_cache_key_tracks_fault_dimensions(self):
        case = {
            "options": {"bus": "GBAVIII", "pes": 1},
            "fault_seed": 3,
            "fault_scale": 1,
        }
        assert oracle_cache_key(case) != oracle_cache_key(
            dict(case, fault_scale=2)
        )

    def test_oracle_checks_are_the_documented_four(self):
        assert ORACLE_CHECKS == ("structural", "protocol", "resilience", "parity")


class TestReportCoverage:
    def _fuzz_record(self, new_findings=0, regressions=0, now_fixed=0):
        return {
            "hash": "ab" * 32,
            "body": {
                "verb": "fuzz",
                "summary": {
                    "sampled": 10,
                    "skipped": {"ppa-needs-4-pes": 3, "duplicate": 1},
                    "new_findings": new_findings,
                    "replay": {
                        "regressions": regressions,
                        "now_fixed": now_fixed,
                    },
                },
            },
            "envelope": {
                "measurements": {"cache_stats": {"hits": 7, "misses": 3}}
            },
        }

    def test_coverage_rows_aggregate_skips_and_cache(self):
        rows = coverage_rows([self._fuzz_record(), self._fuzz_record()])
        assert len(rows) == 1
        row = rows[0]
        assert row["verb"] == "fuzz"
        assert row["runs"] == 2
        assert row["evaluated"] == 20
        assert row["skipped"] == {"duplicate": 2, "ppa-needs-4-pes": 6}
        assert row["cache_hits"] == 14
        assert row["cache_misses"] == 6
        assert row["cache_hit_ratio"] == pytest.approx(0.7)

    def test_coverage_rows_ignore_other_verbs(self):
        assert coverage_rows([{"body": {"verb": "chaos", "summary": {}}}]) == []

    def test_check_regressions_gates_fuzz_records(self):
        clean = check_regressions([self._fuzz_record()], {})
        assert clean == []
        dirty = check_regressions(
            [self._fuzz_record(new_findings=2, regressions=1, now_fixed=1)], {}
        )
        fields = {finding["field"] for finding in dirty}
        assert fields == {"replay.regressions", "replay.now_fixed", "new_findings"}


class TestCli:
    def test_fuzz_round_trip_writes_ledger_and_coverage(self, tmp_path, capsys):
        ledger = str(tmp_path / "ledger")
        out = str(tmp_path / "fuzz.json")
        # Seed 15's single draw is a tiny passing GGBA/1 FPA config at the
        # native 64-bit width (exit 0: no findings, empty corpus).
        code = main(
            [
                "fuzz",
                "--budget",
                "1",
                "--seed",
                "15",
                "--corpus",
                str(tmp_path / "corpus"),
                "--cache-dir",
                str(tmp_path / "cache"),
                "--ledger",
                ledger,
                "-o",
                out,
            ]
        )
        assert code == 0
        summary = json.load(open(out))
        assert summary["sampled"] == 1
        assert summary["failures"] == 0
        capsys.readouterr()
        assert main(["report", "--ledger", ledger, "--json"]) == 0
        report = json.loads(capsys.readouterr().out)
        assert [group["verb"] for group in report["groups"]] == ["fuzz"]
        assert report["coverage"][0]["verb"] == "fuzz"
        assert report["coverage"][0]["evaluated"] == 1

    def test_chaos_unknown_arch_exits_2_with_candidates(self, capsys):
        code = main(["chaos", "--arch", "GBAV3", "--no-ledger"])
        assert code == 2
        err = capsys.readouterr().err
        assert "unknown architecture 'GBAV3'" in err
        assert "did you mean 'GBAVI'" in err

    def test_verify_unknown_arch_exits_2_with_candidates(self, capsys):
        code = main(["verify", "--arch", "SPLITB", "--no-ledger"])
        assert code == 2
        err = capsys.readouterr().err
        assert "unknown architecture 'SPLITB'" in err
        assert "did you mean 'SPLITBA'" in err

    def test_chaos_gbavii_is_reachable(self):
        # GBAVII used to KeyError out of CHAOS_STYLES before the sweep
        # even started; a smoke-size run must now work end to end.
        code = main(
            [
                "chaos",
                "--arch",
                "GBAVII",
                "--backend",
                "heap",
                "--packets",
                "1",
                "--no-ledger",
            ]
        )
        assert code == 0
