"""Tests for the BusSyn generator: netlist builder, BANGen, SubSysGen, BusSyn."""

import pytest

from repro.core import (
    BusSyn,
    NetlistBuilder,
    NetlistError,
    estimate_component,
    generate_ban,
    generate_subsystem,
    plan_ban,
    subsystem_kind,
)
from repro.core.bangen import BanKind, ban_kind
from repro.hdl import Design, Module, Port, Range, elaborate, lint_design, parse_design
from repro.moduledb import default_library
from repro.options import presets
from repro.options.schema import OptionError
from repro.wiredb import default_wire_library

ALL_PRESETS = ["BFBA", "GBAVI", "GBAVIII", "HYBRID", "SPLITBA", "GGBA", "CCBA"]


def leaf(name, ports):
    return Module(name, ports=[Port(*spec) for spec in ports])


class TestNetlistBuilder:
    def test_simple_connection(self):
        builder = NetlistBuilder("top")
        builder.add_instance("A", leaf("mod_a", [("out", "output", Range(7, 0))]), "u_a")
        builder.add_instance("B", leaf("mod_b", [("in", "input", Range(7, 0))]), "u_b")
        builder.connect("w", 8, [("A", "out", 7, 0), ("B", "in", 7, 0)])
        module = builder.build()
        assert module.wire("w").width == 8
        assert module.instances[0].connection("out").expression == "w"

    def test_partial_bit_select(self):
        builder = NetlistBuilder("top")
        builder.add_instance("A", leaf("mod_a", [("bus", "output", Range(7, 0))]), "u_a")
        builder.add_instance("B", leaf("mod_b", [("bit", "input", None)]), "u_b")
        builder.connect("w", 8, [("A", "bus", 7, 0), ("B", "bit", 2, 2)])
        module = builder.build()
        assert module.instances[1].connection("bit").expression == "w[2]"

    def test_net_merge_on_shared_pin(self):
        builder = NetlistBuilder("top")
        builder.add_instance("A", leaf("m", [("p", "inout", None)]), "u_a")
        builder.add_instance("B", leaf("m", [("p", "inout", None)]), "u_b")
        builder.add_instance("C", leaf("m", [("p", "inout", None)]), "u_c")
        builder.connect("w1", 1, [("A", "p", 0, 0), ("B", "p", 0, 0)])
        builder.connect("w2", 1, [("B", "p", 0, 0), ("C", "p", 0, 0)])
        module = builder.build()
        # All three pins end up on one net.
        expressions = {
            instance.connections[0].expression for instance in module.instances
        }
        assert len(expressions) == 1

    def test_promotion_merges_inputs(self):
        builder = NetlistBuilder("top")
        builder.add_instance("A", leaf("m", [("clk", "input", None)]), "u_a")
        builder.add_instance("B", leaf("m", [("clk", "input", None)]), "u_b")
        module = builder.build()
        assert [p.name for p in module.ports] == ["clk"]
        assert module.ports[0].direction == "input"

    def test_promotion_suffixes_colliding_outputs(self):
        builder = NetlistBuilder("top")
        builder.add_instance("A", leaf("m", [("done", "output", None)]), "u_a")
        builder.add_instance("B", leaf("m", [("done", "output", None)]), "u_b")
        module = builder.build()
        assert sorted(p.name for p in module.ports) == ["done_a", "done_b"]

    def test_single_output_keeps_name(self):
        builder = NetlistBuilder("top")
        builder.add_instance("A", leaf("m", [("done", "output", None)]), "u_a")
        module = builder.build()
        assert [p.name for p in module.ports] == ["done"]

    def test_input_output_name_clash_rejected(self):
        builder = NetlistBuilder("top")
        builder.add_instance("A", leaf("m", [("x", "output", None)]), "u_a")
        builder.add_instance("B", leaf("m2", [("x", "input", None)]), "u_b")
        with pytest.raises(NetlistError):
            builder.build()

    def test_ext_creates_port(self):
        builder = NetlistBuilder("top")
        builder.add_instance("A", leaf("m", [("in", "input", Range(7, 0))]), "u_a")
        builder.connect("w", 8, [("A", "in", 7, 0), ("EXT", "bus_in", 7, 0)])
        module = builder.build()
        port = module.port("bus_in")
        assert port is not None and port.direction == "input" and port.width == 8

    def test_ext_partial_span_rejected(self):
        builder = NetlistBuilder("top")
        builder.add_instance("A", leaf("m", [("in", "input", Range(7, 0))]), "u_a")
        with pytest.raises(NetlistError):
            builder.connect("w", 8, [("A", "in", 7, 0), ("EXT", "half", 3, 0)])

    def test_merge_direction_known_pairs(self):
        from repro.core.netlist import _merge_direction

        assert _merge_direction("input", "input", "p") == "input"
        assert _merge_direction("inout", "output", "p") == "inout"
        with pytest.raises(NetlistError, match="add a wire spec"):
            _merge_direction("input", "output", "p")

    def test_merge_direction_rejects_unknown_pair(self):
        # Used to silently coerce any unrecognized pair to "inout".
        from repro.core.netlist import _merge_direction

        with pytest.raises(NetlistError, match="unsupported direction pair"):
            _merge_direction("input", "buffer", "p")

    def test_unknown_module_in_wire(self):
        builder = NetlistBuilder("top")
        with pytest.raises(NetlistError):
            builder.connect("w", 1, [("GHOST", "p", 0, 0)])

    def test_unknown_port_in_wire(self):
        builder = NetlistBuilder("top")
        builder.add_instance("A", leaf("m", [("p", "input", None)]), "u_a")
        with pytest.raises(NetlistError):
            builder.connect("w", 1, [("A", "q", 0, 0)])

    def test_width_mismatch_rejected(self):
        builder = NetlistBuilder("top")
        builder.add_instance("A", leaf("m", [("p", "input", Range(3, 0))]), "u_a")
        with pytest.raises(NetlistError):
            builder.connect("w", 8, [("A", "p", 7, 0)])

    def test_duplicate_instance_rejected(self):
        builder = NetlistBuilder("top")
        builder.add_instance("A", leaf("m", []), "u_a")
        with pytest.raises(NetlistError):
            builder.add_instance("A", leaf("m", []), "u_a2")


class TestBanPlanning:
    def test_kind_classification(self):
        for preset_name, expected in [
            ("BFBA", BanKind.BFBA),
            ("GBAVI", BanKind.GBAVI),
            ("GBAVIII", BanKind.GBAVIII),
            ("HYBRID", BanKind.HYBRID),
            ("SPLITBA", BanKind.SPLITBA),
            ("GGBA", BanKind.SPLITBA),
            ("CCBA", BanKind.GBAVIII),
        ]:
            spec = presets.preset(preset_name, 4)
            subsystem = spec.subsystems[0]
            assert ban_kind(subsystem.pe_bans[0], subsystem) == expected

    def test_global_ban_kind(self):
        spec = presets.preset("GBAVIII", 4)
        subsystem = spec.subsystems[0]
        assert ban_kind(subsystem.global_bans[0], subsystem) == BanKind.GLOBAL

    def test_bfba_plan_module_list(self):
        """Example 11's module list for a BFBA BAN."""
        spec = presets.preset("BFBA", 4)
        plan = plan_ban(spec.subsystems[0].pe_bans[0], spec.subsystems[0])
        components = {m.component for m in plan.modules}
        assert components == {
            "MPC755", "CBI_MPC755", "SB_BFBA", "MBI_SRAM", "SRAM_comp",
            "HS_REGS", "BIFIFO", "GBI_BFBA",
        }

    def test_bfba_hs_regs_reset_high(self):
        """Example 4: BFBA initializes DONE_OP to 1."""
        spec = presets.preset("BFBA", 4)
        plan = plan_ban(spec.subsystems[0].pe_bans[0], spec.subsystems[0])
        hs = [m for m in plan.modules if m.logical == "HS"][0]
        assert hs.parameters["OP_RESET"] == "1'b1"

    def test_ccba_global_grant_cycles(self):
        spec = presets.preset("CCBA", 4)
        plan = plan_ban(spec.subsystems[0].global_bans[0], spec.subsystems[0])
        abi = [m for m in plan.modules if m.logical == "ABI0"][0]
        assert abi.parameters["GRANT_CYCLES"] == 5


class TestBanGeneration:
    @pytest.fixture(scope="class")
    def libraries(self):
        return default_library(), default_wire_library()

    def test_bfba_ban_ports_match_figure17(self, libraries):
        module_library, wire_library = libraries
        spec = presets.preset("BFBA", 4)
        plan = plan_ban(spec.subsystems[0].pe_bans[0], spec.subsystems[0])
        ban = generate_ban(module_library, wire_library, plan)
        port_names = {p.name for p in ban.module.ports}
        for expected in (
            "clk", "rst_n",
            "data_dn", "data_up", "fifo_cs_dn", "fifo_cs_up",
            "web_dn", "web_up", "reb_dn", "reb_up",
            "done_op_cs_dn", "done_op_cs_up", "done_rv_cs_dn", "done_rv_cs_up",
        ):
            assert expected in port_names, expected

    def test_gbaviii_ban_exposes_global_port(self, libraries):
        module_library, wire_library = libraries
        spec = presets.preset("GBAVIII", 4)
        plan = plan_ban(spec.subsystems[0].pe_bans[0], spec.subsystems[0])
        ban = generate_ban(module_library, wire_library, plan)
        port_names = {p.name for p in ban.module.ports}
        assert {"g_addr", "g_dh", "g_dl", "g_web", "g_reb", "g_req_b", "g_gnt_b"} <= port_names


class TestSubsystemAndSystem:
    def test_subsystem_kind(self):
        for preset_name, expected in [
            ("BFBA", "bfba"), ("GBAVI", "gbavi"), ("GBAVIII", "gbaviii"),
            ("HYBRID", "hybrid"), ("SPLITBA", "splitba"), ("GGBA", "ggba"),
            ("CCBA", "ccba"),
        ]:
            spec = presets.preset(preset_name, 4)
            assert subsystem_kind(spec.subsystems[0]) == expected

    def test_ban_reuse_across_subsystem(self):
        """'By simply repeating generated BANs' -- one module, N instances."""
        tool = BusSyn()
        generated = tool.generate(presets.preset("BFBA", 4))
        counts = elaborate(generated.design())
        ban_modules = [name for name in counts if name.startswith("ban_bfba")]
        assert len(ban_modules) == 1
        assert counts[ban_modules[0]] == 4

    def test_gbavi_bridge_count(self):
        tool = BusSyn()
        counts = elaborate(tool.generate(presets.preset("GBAVI", 4)).design())
        assert counts["bb_gbavi"] == 4 + 4  # 4 subsystem ring BBs + 1 per BAN

    def test_splitba_system_bridge(self):
        tool = BusSyn()
        counts = elaborate(tool.generate(presets.preset("SPLITBA", 4)).design())
        assert counts["bb_splitba"] == 1
        assert counts["ban_global_n2_aw20_g3"] == 2


class TestBusSyn:
    @pytest.fixture(scope="class")
    def tool(self):
        return BusSyn()

    @pytest.mark.parametrize("preset_name", ALL_PRESETS)
    def test_generate_lint_clean(self, tool, preset_name):
        generated = tool.generate(presets.preset(preset_name, 4))
        assert generated.lint_errors() == []

    @pytest.mark.parametrize("preset_name", ALL_PRESETS)
    def test_verilog_roundtrips(self, tool, preset_name):
        generated = tool.generate(presets.preset(preset_name, 4))
        text = generated.verilog()
        reparsed = parse_design(text, top=generated.top_name)
        assert sorted(reparsed.modules) == sorted(generated.design().modules)
        errors = [m for m in lint_design(reparsed) if m.severity == "error"]
        assert errors == []

    def test_files_one_per_module(self, tool):
        generated = tool.generate(presets.preset("GBAVIII", 4))
        files = generated.files()
        assert set(files) == {"%s.v" % n for n in generated.design().modules}
        assert all(text.strip().startswith("module") for text in files.values())

    def test_report_fields(self, tool):
        generated = tool.generate(presets.preset("HYBRID", 4))
        report = generated.report
        assert report.pe_count == 4
        assert report.gate_count > 0
        assert 0 < report.generation_time_ms < 10_000
        assert report.gate_breakdown

    def test_pe_count_scaling(self, tool):
        small = tool.generate(presets.preset("BFBA", 2)).report.gate_count
        large = tool.generate(presets.preset("BFBA", 8)).report.gate_count
        assert large == pytest.approx(4 * small, rel=0.05)

    def test_arbiter_policy_option(self, tool):
        spec = presets.preset("GBAVIII", 4)
        spec.subsystems[0].buses[0].arbiter_policy = "priority"
        generated = tool.generate(spec)
        assert any("arbiter_priority" in name for name in generated.design().modules)

    def test_build_machine_hook(self, tool):
        generated = tool.generate(presets.preset("GBAVIII", 4))
        machine = generated.build_machine()
        assert machine.pe_order == ["A", "B", "C", "D"]

    def test_fifo_depth_flows_through(self, tool):
        generated = tool.generate(presets.preset("BFBA", 4, fifo_depth=256))
        assert any("bififo_d256" in name for name in generated.design().modules)


class TestGateModel:
    def test_pe_cores_free(self):
        assert estimate_component("MPC755", {}) == 0
        assert estimate_component("SRAM_comp", {}) == 0

    def test_arbiter_scales_with_masters(self):
        small = estimate_component("ARBITER_FCFS", {"N_MASTERS": 2})
        large = estimate_component("ARBITER_FCFS", {"N_MASTERS": 16})
        assert large > small

    def test_gbaviii_master_is_dominant_per_pe_term(self):
        assert estimate_component("GBI_GBAVIII", {}) > estimate_component("GBI_BFBA", {})
        assert estimate_component("GBI_GBAVIII", {}) > estimate_component("CBI_MPC755", {})
