"""Tests for the machine fabric builder and bus transactions."""

import pytest

from repro.options import presets
from repro.options.schema import OptionError
from repro.sim.fabric import CODE_FOOTPRINT_WORDS, build_machine
from repro.soc.api import SocAPI

ALL_PRESETS = ["BFBA", "GBAVI", "GBAVIII", "HYBRID", "SPLITBA", "GGBA", "CCBA"]


@pytest.fixture(params=ALL_PRESETS)
def machine(request):
    return build_machine(presets.preset(request.param, 4))


class TestTopologies:
    def test_four_pes_everywhere(self, machine):
        assert machine.pe_order == ["A", "B", "C", "D"]
        assert len(machine.pes) == 4

    def test_bfba_fifo_ring(self):
        machine = build_machine(presets.preset("BFBA", 4))
        assert sorted(machine.fifo_blocks) == ["A", "B", "C", "D"]
        # Ring adjacency: every PE has a FIFO toward both neighbours.
        for sender, receiver in [("A", "B"), ("B", "C"), ("C", "D"), ("D", "A"), ("A", "D")]:
            machine.fifo_for(sender, receiver)
        with pytest.raises(LookupError):
            machine.fifo_for("A", "C")  # non-adjacent

    def test_gbavi_bridges_ring(self):
        machine = build_machine(presets.preset("GBAVI", 4))
        assert len(machine.bridges) == 4  # ring of 4
        assert machine.global_memory is None

    def test_gbaviii_direct_global_mastering(self):
        machine = build_machine(presets.preset("GBAVIII", 4))
        global_segment = machine.segments["GLOBAL_BUS_SUB1"]
        for pe in machine.pes.values():
            assert global_segment in machine.direct_segments[pe.name]
        assert machine.global_memory == "GLOBAL_SRAM_G"

    def test_splitba_two_buses_one_bridge(self):
        machine = build_machine(presets.preset("SPLITBA", 4))
        assert len(machine.segments) == 2
        assert len(machine.bridges) == 1
        # Each half's PEs run out of their own shared memory.
        assert machine.shared_memory_of["A"] != machine.shared_memory_of["C"]

    def test_ggba_everything_shared(self):
        machine = build_machine(presets.preset("GGBA", 4))
        assert len(machine.segments) == 1
        for pe in machine.pes.values():
            assert pe.program_device == "GLOBAL_SRAM_G"

    def test_ccba_grant_cycles(self):
        machine = build_machine(presets.preset("CCBA", 4))
        plb = machine.segments["PLB_SUB1"]
        assert plb.grant_cycles == 5
        assert plb.write_grant_cycles == 3

    def test_bus_loading_beat_cycles(self):
        ggba = build_machine(presets.preset("GGBA", 4))
        assert ggba.segments["GLOBAL_BUS_SUB1"].beat_cycles == 2  # 5 loads
        splitba = build_machine(presets.preset("SPLITBA", 4))
        for segment in splitba.segments.values():
            assert segment.beat_cycles == 1  # 4 loads each
        bfba = build_machine(presets.preset("BFBA", 4))
        for segment in bfba.segments.values():
            assert segment.beat_cycles == 1

    def test_code_reservation(self, machine):
        for pe in machine.pes.values():
            assert pe.program_device is not None
            assert pe.code_footprint_words == CODE_FOOTPRINT_WORDS


class TestTransactions:
    def _run(self, machine, program, ban="A"):
        process = machine.pe(ban).run(program)
        machine.sim.run()
        return process.value

    def test_local_write_read(self):
        machine = build_machine(presets.preset("GBAVIII", 4))
        api = SocAPI(machine, "A")
        buffer = api.alloc(8)

        def program():
            yield from api.mem_write([10, 20, 30], buffer)
            values = yield from api.read(buffer, 3)
            return values

        assert self._run(machine, program()) == [10, 20, 30]

    def test_remote_read_across_bridge_gbavi(self):
        machine = build_machine(presets.preset("GBAVI", 4))
        machine.memory("SRAM_A").write(100, [7, 8, 9])
        api_b = SocAPI(machine, "B")

        def program():
            values = yield from api_b.read(("SRAM_A", 100), 3)
            return values

        process = machine.pe("B").run(program())
        machine.sim.run()
        assert process.value == [7, 8, 9]
        assert any(bridge.crossings for bridge in machine.bridges)

    def test_cross_subsystem_splitba(self):
        machine = build_machine(presets.preset("SPLITBA", 4))
        api_a = SocAPI(machine, "A")
        far_memory = machine.shared_memory_of["C"]

        def program():
            yield from api_a.mem_write([42], (far_memory, 5))
            values = yield from api_a.read((far_memory, 5), 1)
            return values

        process = machine.pe("A").run(program())
        machine.sim.run()
        assert process.value == [42]
        assert machine.bridges[0].crossings == 2

    def test_opposing_bridge_crossings_no_deadlock(self):
        """Simultaneous A->far and C->near crossings must not deadlock."""
        machine = build_machine(presets.preset("SPLITBA", 4))
        api_a = SocAPI(machine, "A")
        api_c = SocAPI(machine, "C")
        near = machine.shared_memory_of["A"]
        far = machine.shared_memory_of["C"]

        def prog_a():
            for _ in range(20):
                yield from api_a.mem_write([1] * 32, (far, 100))

        def prog_c():
            for _ in range(20):
                yield from api_c.mem_write([2] * 32, (near, 200))

        machine.pe("A").run(prog_a())
        machine.pe("C").run(prog_c())
        machine.sim.run()  # would raise on livelock / hang forever
        assert machine.bridges[0].crossings == 40

    def test_atomic_rmw(self):
        machine = build_machine(presets.preset("GGBA", 4))
        api = SocAPI(machine, "A")
        address = api.alloc(1)

        def program():
            old, new = yield from api.atomic_update(address, lambda v: v + 5)
            return old, new

        process = machine.pe("A").run(program())
        machine.sim.run()
        assert process.value == (0, 5)
        assert machine.memory(address[0]).read_word(address[1]) == 5

    def test_atomic_rmw_mutual_exclusion(self):
        """Concurrent increments from all PEs never lose an update."""
        machine = build_machine(presets.preset("GGBA", 4))
        apis = {ban: SocAPI(machine, ban) for ban in machine.pe_order}
        counter = apis["A"].alloc(1)

        def incrementer(api):
            def program():
                for _ in range(25):
                    yield from api.atomic_update(counter, lambda v: v + 1)
            return program

        for ban, api in apis.items():
            machine.pe(ban).run(incrementer(api)())
        machine.sim.run()
        assert machine.memory(counter[0]).read_word(counter[1]) == 100

    def test_reserve_exhaustion(self):
        machine = build_machine(presets.preset("GBAVIII", 4))
        size = machine.memory("SRAM_A").size_words
        with pytest.raises(OptionError):
            machine.reserve("SRAM_A", size + 1)

    def test_point_to_point_party_check(self):
        machine = build_machine(presets.preset("BFBA", 4))
        api_c = SocAPI(machine, "C")
        device = machine.devices["BIFIFO_B"]  # A<->B only

        def program():
            yield from machine.transaction(api_c.pe, "BIFIFO_B", 0, 1, False)

        process = machine.pe("C").run(program())
        machine.sim.run()
        with pytest.raises(LookupError):
            process.value

    def test_hsregs_for_extra_pair(self):
        machine = build_machine(presets.preset("BFBA", 4))
        canonical = machine.hsregs_for("C", "D")
        assert canonical.name == "HS_REGS_D"
        ring = machine.hsregs_for("A", "D")  # A is D's successor, not pred
        assert ring.name == "HS_REGS_D_FROM_A"
        assert machine.hsregs_for("A", "D") is ring  # cached

    def test_neighbors(self):
        machine = build_machine(presets.preset("BFBA", 4))
        assert machine.neighbors_of("A") == ("D", "B")
        assert machine.neighbors_of("C") == ("B", "D")
