def _compiled_run_stop(sim, stop_event, deadline, limit):
    buckets = sim._buckets
    overflow = sim._overflow
    pool = sim._timeout_pool
    pop = heappop
    pooled_type = _PooledTimeout
    entry_type = tuple
    mask = _WHEEL_MASK
    size = WHEEL_SIZE
    one = 1
    bits = _WHEEL_BITS
    clears = _WHEEL_CLEARS
    low_masks = _LOW_MASKS
    llen = len
    steps = 0
    pending1 = []
    p1_append = pending1.append
    try:
        while True:
            if stop_event._fired:
                return stop_event.value
            now = sim.now
            if buckets[now & mask]:
                when = now
            else:
                occupied = sim._occupied
                if occupied and buckets[(now + 1) & mask]:
                    when = now + 1
                elif occupied:
                    index = now & mask
                    ahead = occupied >> index
                    if ahead:
                        when = now + (ahead & -ahead).bit_length() - 1
                    else:
                        low = occupied & low_masks[index]
                        when = (
                            now + size - index + (low & -low).bit_length() - 1
                        )
                else:
                    when = None
            if overflow:
                over_when = overflow[0][0]
                if when is None or over_when < when:
                    when = over_when
            elif when is None:
                break
            sim.now = when
            while overflow and overflow[0][0] == when:
                if stop_event._fired:
                    return stop_event.value
                event = pop(overflow)[2]
                event._fire()
                if type(event) is pooled_type:
                    pool.append(event)
                steps += 1
                if steps > limit:
                    raise SimulationError("event limit exceeded (livelock?)")
            index = when & mask
            bucket = buckets[index]
            if not bucket:
                continue
            next_index = (when + 1) & mask
            next_bucket = buckets[next_index]
            next_bit = bits[next_index]
            fired = 0
            appended = 0
            add_bits = 0
            limit_left = limit - steps
            try:
                # Iterating the live list: a CPython list iterator picks up
                # entries appended during iteration, so zero-delay events
                # scheduled by a callback still fire this same cycle --
                # without a len() call or subscript per event.  ``steps`` is
                # folded in once per bucket (finally); the per-event limit
                # guard compares ``fired`` against the hoisted remainder.
                for entry in bucket:
                    if stop_event._fired:
                        return stop_event.value
                    fired += 1
                    if type(entry) is entry_type:
                        process = entry[0]
                        if process._target is not entry or process._interrupts:
                            # Stale entry, queued interrupt, or finished
                            # process: the generic resume sorts them out
                            # with heap-identical semantics.
                            if pending1:
                                next_bucket.extend(pending1)
                                add_bits |= next_bit
                                appended += llen(pending1)
                                del pending1[:]
                            process._resume(entry)
                        else:
                            try:
                                nxt = process._send(None)
                            except StopIteration as stop:
                                process._target = None
                                process._triggered = True
                                process._value = stop.value
                                if pending1:
                                    next_bucket.extend(pending1)
                                    add_bits |= next_bit
                                    appended += llen(pending1)
                                    del pending1[:]
                                sim._schedule(process)
                            except Interrupt:
                                raise SimulationError(
                                    "process %r did not handle an Interrupt"
                                    % process.name
                                )
                            except BaseException as error:
                                process._target = None
                                process._triggered = True
                                process._exception = error
                                if pending1:
                                    next_bucket.extend(pending1)
                                    add_bits |= next_bit
                                    appended += llen(pending1)
                                    del pending1[:]
                                sim._schedule(process)
                            else:
                                if nxt is one:
                                    p1_append(entry)
                                elif type(nxt) is int and 0 <= nxt < size:
                                    j = (when + nxt) & mask
                                    buckets[j].append(entry)
                                    add_bits |= bits[j]
                                    appended += 1
                                else:
                                    if pending1:
                                        next_bucket.extend(pending1)
                                        add_bits |= next_bit
                                        appended += llen(pending1)
                                        del pending1[:]
                                    _resume_slow(sim, process, nxt)
                    else:
                        if pending1:
                            next_bucket.extend(pending1)
                            add_bits |= next_bit
                            appended += llen(pending1)
                            del pending1[:]
                        if type(entry) is pooled_type:
                            entry._fired = True
                            callbacks = entry.callbacks
                            callback = callbacks[0]
                            callbacks.clear()
                            callback(entry)
                            pool.append(entry)
                        else:
                            entry._fire()
                    if fired > limit_left:
                        raise SimulationError("event limit exceeded (livelock?)")
            finally:
                steps += fired
                if pending1:
                    next_bucket.extend(pending1)
                    add_bits |= next_bit
                    appended += llen(pending1)
                    del pending1[:]
                if fired:
                    sim._wheel_count += appended - fired
                    del bucket[:fired]
                occupied = sim._occupied | add_bits
                if not bucket:
                    occupied &= clears[index]
                sim._occupied = occupied
        if stop_event._fired:
            return stop_event.value
        raise SimulationError(
            "simulation ran to quiescence before the awaited event fired"
        )
        return None
    finally:
        sim.events_processed += steps
        _kernel._TOTAL_EVENTS = _kernel._TOTAL_EVENTS + steps
