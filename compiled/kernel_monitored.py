def _compiled_run_monitored(sim, stop_event, deadline, limit):
    buckets = sim._buckets
    overflow = sim._overflow
    pool = sim._timeout_pool
    pop = heappop
    pooled_type = _PooledTimeout
    entry_type = tuple
    mask = _WHEEL_MASK
    size = WHEEL_SIZE
    bits = _WHEEL_BITS
    clears = _WHEEL_CLEARS
    low_masks = _LOW_MASKS
    peak = sim.peak_queue_depth
    steps = 0
    try:
        while True:
            if stop_event is not None and stop_event._fired:
                return stop_event.value
            now = sim.now
            if buckets[now & mask]:
                when = now
            else:
                occupied = sim._occupied
                if occupied and buckets[(now + 1) & mask]:
                    when = now + 1
                elif occupied:
                    index = now & mask
                    ahead = occupied >> index
                    if ahead:
                        when = now + (ahead & -ahead).bit_length() - 1
                    else:
                        low = occupied & low_masks[index]
                        when = (
                            now + size - index + (low & -low).bit_length() - 1
                        )
                else:
                    when = None
            if overflow:
                over_when = overflow[0][0]
                if when is None or over_when < when:
                    when = over_when
            elif when is None:
                break
            if deadline is not None and when >= deadline:
                sim.now = deadline
                return None
            sim.now = when
            while overflow and overflow[0][0] == when:
                if stop_event is not None and stop_event._fired:
                    return stop_event.value
                depth = sim._wheel_count + len(overflow)
                if depth > peak:
                    peak = depth
                event = pop(overflow)[2]
                event._fire()
                if type(event) is pooled_type:
                    pool.append(event)
                steps += 1
                if steps > limit:
                    raise SimulationError("event limit exceeded (livelock?)")
            index = when & mask
            bucket = buckets[index]
            if not bucket:
                continue
            fired = 0
            try:
                while fired < len(bucket):
                    if stop_event is not None and stop_event._fired:
                        return stop_event.value
                    depth = sim._wheel_count - fired + len(overflow)
                    if depth > peak:
                        peak = depth
                    entry = bucket[fired]
                    fired += 1
                    steps += 1
                    if type(entry) is entry_type:
                        process = entry[0]
                        if process._target is not entry or process._interrupts:
                            process._resume(entry)
                        else:
                            try:
                                nxt = process._send(None)
                            except StopIteration as stop:
                                process._target = None
                                process._triggered = True
                                process._value = stop.value
                                sim._schedule(process)
                            except Interrupt:
                                raise SimulationError(
                                    "process %r did not handle an Interrupt"
                                    % process.name
                                )
                            except BaseException as error:
                                process._target = None
                                process._triggered = True
                                process._exception = error
                                sim._schedule(process)
                            else:
                                if type(nxt) is int and 0 <= nxt < size:
                                    j = (when + nxt) & mask
                                    buckets[j].append(entry)
                                    sim._occupied |= bits[j]
                                    sim._wheel_count += 1
                                else:
                                    _resume_slow(sim, process, nxt)
                    else:
                        event = entry
                        event._fire()
                        if type(event) is pooled_type:
                            pool.append(event)
                    if steps > limit:
                        raise SimulationError("event limit exceeded (livelock?)")
            finally:
                if fired:
                    sim._wheel_count -= fired
                    del bucket[:fired]
                if not bucket:
                    sim._occupied &= clears[index]
        if stop_event is not None:
            if stop_event._fired:
                return stop_event.value
            raise SimulationError(
                "simulation ran to quiescence before the awaited event fired"
            )
        if deadline is not None:
            sim.now = deadline
        return None
    finally:
        if peak > sim.peak_queue_depth:
            sim.peak_queue_depth = peak
        sim.events_processed += steps
        _kernel._TOTAL_EVENTS = _kernel._TOTAL_EVENTS + steps
