"""Specialized fabric dispatch for machine 'GBAVIII' (generated).

One factory per eligible (master, device) pair; closures bind the live
arbiter/stats/memory objects, while route, policy and timing constants are
baked in as literals.  Regenerate with ``repro compile -o``.
"""

def _make__txn_MPC755_A__GLOBAL_SRAM_G(sim, arbiter, stats, request, access_latency, touch_read, touch_write, cslots):
    # MPC755_A -> GLOBAL_SRAM_G over GLOBAL_BUS_SUB1: FCFS inlined, grant 3/3w, 2 w/beat, 2 cyc/beat
    def _txn_MPC755_A__GLOBAL_SRAM_G(address, words, write, data=None):
        latency = access_latency(address, words, write)
        entry = sim.now
        if arbiter.owner is None and not arbiter._pending:
            arbiter.owner = 'MPC755_A'
            arbiter.grants += 1
            arbiter.busy_since = entry
        else:
            yield request('MPC755_A')
        acquired = sim.now
        held = False
        try:
            held = True
            yield (
                (3 if write else 3)
                + (max(words, 1) + 1) // 2 * 2
                + latency
            )
        finally:
            if held:
                end = sim.now
                arbiter.owner = None
                arbiter.busy_cycles += end - arbiter.busy_since
                arbiter.busy_since = None
                if arbiter._pending:
                    arbiter._dispatch()
                stats.transactions += 1
                if write:
                    stats.write_transactions += 1
                else:
                    stats.read_transactions += 1
                stats.words_moved += words
                stats.busy_cycles += end - entry
                stats.arbitration_cycles += acquired - entry
                stats.memory_cycles += latency
                per_master = stats.per_master
                per_master['MPC755_A'] = per_master.get('MPC755_A', 0) + 1
        if write:
            touch_write(address, data if data is not None else [0] * words)
            return None
        return touch_read(address, words)
    return _txn_MPC755_A__GLOBAL_SRAM_G

def _make__miss_MPC755_A__GLOBAL_SRAM_G(sim, arbiter, stats, request, access_latency, target, cslots):
    # MPC755_A -> GLOBAL_SRAM_G cache-miss bursts over GLOBAL_BUS_SUB1
    def _miss_MPC755_A__GLOBAL_SRAM_G(misses, line_words, write):
        per_line = access_latency(0, line_words, write)
        remaining = misses
        while remaining > 0:
            group = remaining if remaining < 8 else 8
            remaining -= group
            words = group * line_words
            entry = sim.now
            if arbiter.owner is None and not arbiter._pending:
                arbiter.owner = 'MPC755_A'
                arbiter.grants += 1
                arbiter.busy_since = entry
            else:
                yield request('MPC755_A')
            acquired = sim.now
            memory_cycles = per_line * group
            held = False
            try:
                held = True
                yield (
                    (3 if write else 3) * group
                    + (max(words, 1) + 1) // 2 * 2
                    + memory_cycles
                )
            finally:
                if held:
                    end = sim.now
                    arbiter.owner = None
                    arbiter.busy_cycles += end - arbiter.busy_since
                    arbiter.busy_since = None
                    if arbiter._pending:
                        arbiter._dispatch()
                    stats.transactions += 1
                    if write:
                        stats.write_transactions += 1
                    else:
                        stats.read_transactions += 1
                    stats.words_moved += words
                    stats.busy_cycles += end - entry
                    stats.arbitration_cycles += acquired - entry
                    stats.memory_cycles += memory_cycles
                    per_master = stats.per_master
                    per_master['MPC755_A'] = per_master.get('MPC755_A', 0) + 1
            if write:
                target.writes += words
            else:
                target.reads += words
    return _miss_MPC755_A__GLOBAL_SRAM_G

def _make__txn_MPC755_A__SRAM_A(sim, arbiter, stats, request, access_latency, touch_read, touch_write, cslots):
    # MPC755_A -> SRAM_A over CPU_BUS_A: FCFS inlined, grant 3/3w, 2 w/beat, 1 cyc/beat
    def _txn_MPC755_A__SRAM_A(address, words, write, data=None):
        latency = access_latency(address, words, write)
        entry = sim.now
        if arbiter.owner is None and not arbiter._pending:
            arbiter.owner = 'MPC755_A'
            arbiter.grants += 1
            arbiter.busy_since = entry
        else:
            yield request('MPC755_A')
        acquired = sim.now
        held = False
        try:
            held = True
            yield (
                (3 if write else 3)
                + (max(words, 1) + 1) // 2 * 1
                + latency
            )
        finally:
            if held:
                end = sim.now
                arbiter.owner = None
                arbiter.busy_cycles += end - arbiter.busy_since
                arbiter.busy_since = None
                if arbiter._pending:
                    arbiter._dispatch()
                stats.transactions += 1
                if write:
                    stats.write_transactions += 1
                else:
                    stats.read_transactions += 1
                stats.words_moved += words
                stats.busy_cycles += end - entry
                stats.arbitration_cycles += acquired - entry
                stats.memory_cycles += latency
                per_master = stats.per_master
                per_master['MPC755_A'] = per_master.get('MPC755_A', 0) + 1
        if write:
            touch_write(address, data if data is not None else [0] * words)
            return None
        return touch_read(address, words)
    return _txn_MPC755_A__SRAM_A

def _make__miss_MPC755_A__SRAM_A(sim, arbiter, stats, request, access_latency, target, cslots):
    # MPC755_A -> SRAM_A cache-miss bursts over CPU_BUS_A
    def _miss_MPC755_A__SRAM_A(misses, line_words, write):
        per_line = access_latency(0, line_words, write)
        remaining = misses
        while remaining > 0:
            group = remaining if remaining < 8 else 8
            remaining -= group
            words = group * line_words
            entry = sim.now
            if arbiter.owner is None and not arbiter._pending:
                arbiter.owner = 'MPC755_A'
                arbiter.grants += 1
                arbiter.busy_since = entry
            else:
                yield request('MPC755_A')
            acquired = sim.now
            memory_cycles = per_line * group
            held = False
            try:
                held = True
                yield (
                    (3 if write else 3) * group
                    + (max(words, 1) + 1) // 2 * 1
                    + memory_cycles
                )
            finally:
                if held:
                    end = sim.now
                    arbiter.owner = None
                    arbiter.busy_cycles += end - arbiter.busy_since
                    arbiter.busy_since = None
                    if arbiter._pending:
                        arbiter._dispatch()
                    stats.transactions += 1
                    if write:
                        stats.write_transactions += 1
                    else:
                        stats.read_transactions += 1
                    stats.words_moved += words
                    stats.busy_cycles += end - entry
                    stats.arbitration_cycles += acquired - entry
                    stats.memory_cycles += memory_cycles
                    per_master = stats.per_master
                    per_master['MPC755_A'] = per_master.get('MPC755_A', 0) + 1
            if write:
                target.writes += words
            else:
                target.reads += words
    return _miss_MPC755_A__SRAM_A

def _make__txn_MPC755_B__GLOBAL_SRAM_G(sim, arbiter, stats, request, access_latency, touch_read, touch_write, cslots):
    # MPC755_B -> GLOBAL_SRAM_G over GLOBAL_BUS_SUB1: FCFS inlined, grant 3/3w, 2 w/beat, 2 cyc/beat
    def _txn_MPC755_B__GLOBAL_SRAM_G(address, words, write, data=None):
        latency = access_latency(address, words, write)
        entry = sim.now
        if arbiter.owner is None and not arbiter._pending:
            arbiter.owner = 'MPC755_B'
            arbiter.grants += 1
            arbiter.busy_since = entry
        else:
            yield request('MPC755_B')
        acquired = sim.now
        held = False
        try:
            held = True
            yield (
                (3 if write else 3)
                + (max(words, 1) + 1) // 2 * 2
                + latency
            )
        finally:
            if held:
                end = sim.now
                arbiter.owner = None
                arbiter.busy_cycles += end - arbiter.busy_since
                arbiter.busy_since = None
                if arbiter._pending:
                    arbiter._dispatch()
                stats.transactions += 1
                if write:
                    stats.write_transactions += 1
                else:
                    stats.read_transactions += 1
                stats.words_moved += words
                stats.busy_cycles += end - entry
                stats.arbitration_cycles += acquired - entry
                stats.memory_cycles += latency
                per_master = stats.per_master
                per_master['MPC755_B'] = per_master.get('MPC755_B', 0) + 1
        if write:
            touch_write(address, data if data is not None else [0] * words)
            return None
        return touch_read(address, words)
    return _txn_MPC755_B__GLOBAL_SRAM_G

def _make__miss_MPC755_B__GLOBAL_SRAM_G(sim, arbiter, stats, request, access_latency, target, cslots):
    # MPC755_B -> GLOBAL_SRAM_G cache-miss bursts over GLOBAL_BUS_SUB1
    def _miss_MPC755_B__GLOBAL_SRAM_G(misses, line_words, write):
        per_line = access_latency(0, line_words, write)
        remaining = misses
        while remaining > 0:
            group = remaining if remaining < 8 else 8
            remaining -= group
            words = group * line_words
            entry = sim.now
            if arbiter.owner is None and not arbiter._pending:
                arbiter.owner = 'MPC755_B'
                arbiter.grants += 1
                arbiter.busy_since = entry
            else:
                yield request('MPC755_B')
            acquired = sim.now
            memory_cycles = per_line * group
            held = False
            try:
                held = True
                yield (
                    (3 if write else 3) * group
                    + (max(words, 1) + 1) // 2 * 2
                    + memory_cycles
                )
            finally:
                if held:
                    end = sim.now
                    arbiter.owner = None
                    arbiter.busy_cycles += end - arbiter.busy_since
                    arbiter.busy_since = None
                    if arbiter._pending:
                        arbiter._dispatch()
                    stats.transactions += 1
                    if write:
                        stats.write_transactions += 1
                    else:
                        stats.read_transactions += 1
                    stats.words_moved += words
                    stats.busy_cycles += end - entry
                    stats.arbitration_cycles += acquired - entry
                    stats.memory_cycles += memory_cycles
                    per_master = stats.per_master
                    per_master['MPC755_B'] = per_master.get('MPC755_B', 0) + 1
            if write:
                target.writes += words
            else:
                target.reads += words
    return _miss_MPC755_B__GLOBAL_SRAM_G

def _make__txn_MPC755_B__SRAM_B(sim, arbiter, stats, request, access_latency, touch_read, touch_write, cslots):
    # MPC755_B -> SRAM_B over CPU_BUS_B: FCFS inlined, grant 3/3w, 2 w/beat, 1 cyc/beat
    def _txn_MPC755_B__SRAM_B(address, words, write, data=None):
        latency = access_latency(address, words, write)
        entry = sim.now
        if arbiter.owner is None and not arbiter._pending:
            arbiter.owner = 'MPC755_B'
            arbiter.grants += 1
            arbiter.busy_since = entry
        else:
            yield request('MPC755_B')
        acquired = sim.now
        held = False
        try:
            held = True
            yield (
                (3 if write else 3)
                + (max(words, 1) + 1) // 2 * 1
                + latency
            )
        finally:
            if held:
                end = sim.now
                arbiter.owner = None
                arbiter.busy_cycles += end - arbiter.busy_since
                arbiter.busy_since = None
                if arbiter._pending:
                    arbiter._dispatch()
                stats.transactions += 1
                if write:
                    stats.write_transactions += 1
                else:
                    stats.read_transactions += 1
                stats.words_moved += words
                stats.busy_cycles += end - entry
                stats.arbitration_cycles += acquired - entry
                stats.memory_cycles += latency
                per_master = stats.per_master
                per_master['MPC755_B'] = per_master.get('MPC755_B', 0) + 1
        if write:
            touch_write(address, data if data is not None else [0] * words)
            return None
        return touch_read(address, words)
    return _txn_MPC755_B__SRAM_B

def _make__miss_MPC755_B__SRAM_B(sim, arbiter, stats, request, access_latency, target, cslots):
    # MPC755_B -> SRAM_B cache-miss bursts over CPU_BUS_B
    def _miss_MPC755_B__SRAM_B(misses, line_words, write):
        per_line = access_latency(0, line_words, write)
        remaining = misses
        while remaining > 0:
            group = remaining if remaining < 8 else 8
            remaining -= group
            words = group * line_words
            entry = sim.now
            if arbiter.owner is None and not arbiter._pending:
                arbiter.owner = 'MPC755_B'
                arbiter.grants += 1
                arbiter.busy_since = entry
            else:
                yield request('MPC755_B')
            acquired = sim.now
            memory_cycles = per_line * group
            held = False
            try:
                held = True
                yield (
                    (3 if write else 3) * group
                    + (max(words, 1) + 1) // 2 * 1
                    + memory_cycles
                )
            finally:
                if held:
                    end = sim.now
                    arbiter.owner = None
                    arbiter.busy_cycles += end - arbiter.busy_since
                    arbiter.busy_since = None
                    if arbiter._pending:
                        arbiter._dispatch()
                    stats.transactions += 1
                    if write:
                        stats.write_transactions += 1
                    else:
                        stats.read_transactions += 1
                    stats.words_moved += words
                    stats.busy_cycles += end - entry
                    stats.arbitration_cycles += acquired - entry
                    stats.memory_cycles += memory_cycles
                    per_master = stats.per_master
                    per_master['MPC755_B'] = per_master.get('MPC755_B', 0) + 1
            if write:
                target.writes += words
            else:
                target.reads += words
    return _miss_MPC755_B__SRAM_B

def _make__txn_MPC755_C__GLOBAL_SRAM_G(sim, arbiter, stats, request, access_latency, touch_read, touch_write, cslots):
    # MPC755_C -> GLOBAL_SRAM_G over GLOBAL_BUS_SUB1: FCFS inlined, grant 3/3w, 2 w/beat, 2 cyc/beat
    def _txn_MPC755_C__GLOBAL_SRAM_G(address, words, write, data=None):
        latency = access_latency(address, words, write)
        entry = sim.now
        if arbiter.owner is None and not arbiter._pending:
            arbiter.owner = 'MPC755_C'
            arbiter.grants += 1
            arbiter.busy_since = entry
        else:
            yield request('MPC755_C')
        acquired = sim.now
        held = False
        try:
            held = True
            yield (
                (3 if write else 3)
                + (max(words, 1) + 1) // 2 * 2
                + latency
            )
        finally:
            if held:
                end = sim.now
                arbiter.owner = None
                arbiter.busy_cycles += end - arbiter.busy_since
                arbiter.busy_since = None
                if arbiter._pending:
                    arbiter._dispatch()
                stats.transactions += 1
                if write:
                    stats.write_transactions += 1
                else:
                    stats.read_transactions += 1
                stats.words_moved += words
                stats.busy_cycles += end - entry
                stats.arbitration_cycles += acquired - entry
                stats.memory_cycles += latency
                per_master = stats.per_master
                per_master['MPC755_C'] = per_master.get('MPC755_C', 0) + 1
        if write:
            touch_write(address, data if data is not None else [0] * words)
            return None
        return touch_read(address, words)
    return _txn_MPC755_C__GLOBAL_SRAM_G

def _make__miss_MPC755_C__GLOBAL_SRAM_G(sim, arbiter, stats, request, access_latency, target, cslots):
    # MPC755_C -> GLOBAL_SRAM_G cache-miss bursts over GLOBAL_BUS_SUB1
    def _miss_MPC755_C__GLOBAL_SRAM_G(misses, line_words, write):
        per_line = access_latency(0, line_words, write)
        remaining = misses
        while remaining > 0:
            group = remaining if remaining < 8 else 8
            remaining -= group
            words = group * line_words
            entry = sim.now
            if arbiter.owner is None and not arbiter._pending:
                arbiter.owner = 'MPC755_C'
                arbiter.grants += 1
                arbiter.busy_since = entry
            else:
                yield request('MPC755_C')
            acquired = sim.now
            memory_cycles = per_line * group
            held = False
            try:
                held = True
                yield (
                    (3 if write else 3) * group
                    + (max(words, 1) + 1) // 2 * 2
                    + memory_cycles
                )
            finally:
                if held:
                    end = sim.now
                    arbiter.owner = None
                    arbiter.busy_cycles += end - arbiter.busy_since
                    arbiter.busy_since = None
                    if arbiter._pending:
                        arbiter._dispatch()
                    stats.transactions += 1
                    if write:
                        stats.write_transactions += 1
                    else:
                        stats.read_transactions += 1
                    stats.words_moved += words
                    stats.busy_cycles += end - entry
                    stats.arbitration_cycles += acquired - entry
                    stats.memory_cycles += memory_cycles
                    per_master = stats.per_master
                    per_master['MPC755_C'] = per_master.get('MPC755_C', 0) + 1
            if write:
                target.writes += words
            else:
                target.reads += words
    return _miss_MPC755_C__GLOBAL_SRAM_G

def _make__txn_MPC755_C__SRAM_C(sim, arbiter, stats, request, access_latency, touch_read, touch_write, cslots):
    # MPC755_C -> SRAM_C over CPU_BUS_C: FCFS inlined, grant 3/3w, 2 w/beat, 1 cyc/beat
    def _txn_MPC755_C__SRAM_C(address, words, write, data=None):
        latency = access_latency(address, words, write)
        entry = sim.now
        if arbiter.owner is None and not arbiter._pending:
            arbiter.owner = 'MPC755_C'
            arbiter.grants += 1
            arbiter.busy_since = entry
        else:
            yield request('MPC755_C')
        acquired = sim.now
        held = False
        try:
            held = True
            yield (
                (3 if write else 3)
                + (max(words, 1) + 1) // 2 * 1
                + latency
            )
        finally:
            if held:
                end = sim.now
                arbiter.owner = None
                arbiter.busy_cycles += end - arbiter.busy_since
                arbiter.busy_since = None
                if arbiter._pending:
                    arbiter._dispatch()
                stats.transactions += 1
                if write:
                    stats.write_transactions += 1
                else:
                    stats.read_transactions += 1
                stats.words_moved += words
                stats.busy_cycles += end - entry
                stats.arbitration_cycles += acquired - entry
                stats.memory_cycles += latency
                per_master = stats.per_master
                per_master['MPC755_C'] = per_master.get('MPC755_C', 0) + 1
        if write:
            touch_write(address, data if data is not None else [0] * words)
            return None
        return touch_read(address, words)
    return _txn_MPC755_C__SRAM_C

def _make__miss_MPC755_C__SRAM_C(sim, arbiter, stats, request, access_latency, target, cslots):
    # MPC755_C -> SRAM_C cache-miss bursts over CPU_BUS_C
    def _miss_MPC755_C__SRAM_C(misses, line_words, write):
        per_line = access_latency(0, line_words, write)
        remaining = misses
        while remaining > 0:
            group = remaining if remaining < 8 else 8
            remaining -= group
            words = group * line_words
            entry = sim.now
            if arbiter.owner is None and not arbiter._pending:
                arbiter.owner = 'MPC755_C'
                arbiter.grants += 1
                arbiter.busy_since = entry
            else:
                yield request('MPC755_C')
            acquired = sim.now
            memory_cycles = per_line * group
            held = False
            try:
                held = True
                yield (
                    (3 if write else 3) * group
                    + (max(words, 1) + 1) // 2 * 1
                    + memory_cycles
                )
            finally:
                if held:
                    end = sim.now
                    arbiter.owner = None
                    arbiter.busy_cycles += end - arbiter.busy_since
                    arbiter.busy_since = None
                    if arbiter._pending:
                        arbiter._dispatch()
                    stats.transactions += 1
                    if write:
                        stats.write_transactions += 1
                    else:
                        stats.read_transactions += 1
                    stats.words_moved += words
                    stats.busy_cycles += end - entry
                    stats.arbitration_cycles += acquired - entry
                    stats.memory_cycles += memory_cycles
                    per_master = stats.per_master
                    per_master['MPC755_C'] = per_master.get('MPC755_C', 0) + 1
            if write:
                target.writes += words
            else:
                target.reads += words
    return _miss_MPC755_C__SRAM_C

def _make__txn_MPC755_D__GLOBAL_SRAM_G(sim, arbiter, stats, request, access_latency, touch_read, touch_write, cslots):
    # MPC755_D -> GLOBAL_SRAM_G over GLOBAL_BUS_SUB1: FCFS inlined, grant 3/3w, 2 w/beat, 2 cyc/beat
    def _txn_MPC755_D__GLOBAL_SRAM_G(address, words, write, data=None):
        latency = access_latency(address, words, write)
        entry = sim.now
        if arbiter.owner is None and not arbiter._pending:
            arbiter.owner = 'MPC755_D'
            arbiter.grants += 1
            arbiter.busy_since = entry
        else:
            yield request('MPC755_D')
        acquired = sim.now
        held = False
        try:
            held = True
            yield (
                (3 if write else 3)
                + (max(words, 1) + 1) // 2 * 2
                + latency
            )
        finally:
            if held:
                end = sim.now
                arbiter.owner = None
                arbiter.busy_cycles += end - arbiter.busy_since
                arbiter.busy_since = None
                if arbiter._pending:
                    arbiter._dispatch()
                stats.transactions += 1
                if write:
                    stats.write_transactions += 1
                else:
                    stats.read_transactions += 1
                stats.words_moved += words
                stats.busy_cycles += end - entry
                stats.arbitration_cycles += acquired - entry
                stats.memory_cycles += latency
                per_master = stats.per_master
                per_master['MPC755_D'] = per_master.get('MPC755_D', 0) + 1
        if write:
            touch_write(address, data if data is not None else [0] * words)
            return None
        return touch_read(address, words)
    return _txn_MPC755_D__GLOBAL_SRAM_G

def _make__miss_MPC755_D__GLOBAL_SRAM_G(sim, arbiter, stats, request, access_latency, target, cslots):
    # MPC755_D -> GLOBAL_SRAM_G cache-miss bursts over GLOBAL_BUS_SUB1
    def _miss_MPC755_D__GLOBAL_SRAM_G(misses, line_words, write):
        per_line = access_latency(0, line_words, write)
        remaining = misses
        while remaining > 0:
            group = remaining if remaining < 8 else 8
            remaining -= group
            words = group * line_words
            entry = sim.now
            if arbiter.owner is None and not arbiter._pending:
                arbiter.owner = 'MPC755_D'
                arbiter.grants += 1
                arbiter.busy_since = entry
            else:
                yield request('MPC755_D')
            acquired = sim.now
            memory_cycles = per_line * group
            held = False
            try:
                held = True
                yield (
                    (3 if write else 3) * group
                    + (max(words, 1) + 1) // 2 * 2
                    + memory_cycles
                )
            finally:
                if held:
                    end = sim.now
                    arbiter.owner = None
                    arbiter.busy_cycles += end - arbiter.busy_since
                    arbiter.busy_since = None
                    if arbiter._pending:
                        arbiter._dispatch()
                    stats.transactions += 1
                    if write:
                        stats.write_transactions += 1
                    else:
                        stats.read_transactions += 1
                    stats.words_moved += words
                    stats.busy_cycles += end - entry
                    stats.arbitration_cycles += acquired - entry
                    stats.memory_cycles += memory_cycles
                    per_master = stats.per_master
                    per_master['MPC755_D'] = per_master.get('MPC755_D', 0) + 1
            if write:
                target.writes += words
            else:
                target.reads += words
    return _miss_MPC755_D__GLOBAL_SRAM_G

def _make__txn_MPC755_D__SRAM_D(sim, arbiter, stats, request, access_latency, touch_read, touch_write, cslots):
    # MPC755_D -> SRAM_D over CPU_BUS_D: FCFS inlined, grant 3/3w, 2 w/beat, 1 cyc/beat
    def _txn_MPC755_D__SRAM_D(address, words, write, data=None):
        latency = access_latency(address, words, write)
        entry = sim.now
        if arbiter.owner is None and not arbiter._pending:
            arbiter.owner = 'MPC755_D'
            arbiter.grants += 1
            arbiter.busy_since = entry
        else:
            yield request('MPC755_D')
        acquired = sim.now
        held = False
        try:
            held = True
            yield (
                (3 if write else 3)
                + (max(words, 1) + 1) // 2 * 1
                + latency
            )
        finally:
            if held:
                end = sim.now
                arbiter.owner = None
                arbiter.busy_cycles += end - arbiter.busy_since
                arbiter.busy_since = None
                if arbiter._pending:
                    arbiter._dispatch()
                stats.transactions += 1
                if write:
                    stats.write_transactions += 1
                else:
                    stats.read_transactions += 1
                stats.words_moved += words
                stats.busy_cycles += end - entry
                stats.arbitration_cycles += acquired - entry
                stats.memory_cycles += latency
                per_master = stats.per_master
                per_master['MPC755_D'] = per_master.get('MPC755_D', 0) + 1
        if write:
            touch_write(address, data if data is not None else [0] * words)
            return None
        return touch_read(address, words)
    return _txn_MPC755_D__SRAM_D

def _make__miss_MPC755_D__SRAM_D(sim, arbiter, stats, request, access_latency, target, cslots):
    # MPC755_D -> SRAM_D cache-miss bursts over CPU_BUS_D
    def _miss_MPC755_D__SRAM_D(misses, line_words, write):
        per_line = access_latency(0, line_words, write)
        remaining = misses
        while remaining > 0:
            group = remaining if remaining < 8 else 8
            remaining -= group
            words = group * line_words
            entry = sim.now
            if arbiter.owner is None and not arbiter._pending:
                arbiter.owner = 'MPC755_D'
                arbiter.grants += 1
                arbiter.busy_since = entry
            else:
                yield request('MPC755_D')
            acquired = sim.now
            memory_cycles = per_line * group
            held = False
            try:
                held = True
                yield (
                    (3 if write else 3) * group
                    + (max(words, 1) + 1) // 2 * 1
                    + memory_cycles
                )
            finally:
                if held:
                    end = sim.now
                    arbiter.owner = None
                    arbiter.busy_cycles += end - arbiter.busy_since
                    arbiter.busy_since = None
                    if arbiter._pending:
                        arbiter._dispatch()
                    stats.transactions += 1
                    if write:
                        stats.write_transactions += 1
                    else:
                        stats.read_transactions += 1
                    stats.words_moved += words
                    stats.busy_cycles += end - entry
                    stats.arbitration_cycles += acquired - entry
                    stats.memory_cycles += memory_cycles
                    per_master = stats.per_master
                    per_master['MPC755_D'] = per_master.get('MPC755_D', 0) + 1
            if write:
                target.writes += words
            else:
                target.reads += words
    return _miss_MPC755_D__SRAM_D
