#!/usr/bin/env python
"""Quickstart: generate a bus system and simulate an application on it.

Mirrors the paper's flow end to end:

1. describe a Bus System with the user options of Figure 18 (here: the
   4-PE GBAVIII preset -- global arbiter + global memory, Figure 5);
2. run BusSyn to get synthesizable Verilog, a generation-time/gate-count
   report (Table V's columns), and a structural lint check;
3. build the simulation twin of the same spec and run the OFDM
   transmitter on it in functional-parallel style (Table II, case 3).
"""

from repro import BusSyn, build_machine, presets
from repro.apps.ofdm import OfdmParameters, run_ofdm


def main() -> None:
    # -- 1. user options -------------------------------------------------
    spec = presets.preset("GBAVIII", pe_count=4)
    print("Bus System: %s  (%d PEs, %.0f MB total memory)" % (
        spec.name, spec.pe_count, spec.total_memory_bytes / 2**20))

    # -- 2. generate Verilog ----------------------------------------------
    generated = BusSyn().generate(spec)
    print("\nGeneration report:")
    print(" ", generated.report.row())
    errors = generated.lint_errors()
    print("  lint: %s" % ("clean" if not errors else errors))
    files = generated.files()
    print("  %d Verilog modules; top is %s" % (len(files), generated.top_name))
    top_file = "%s.v" % generated.top_name
    print("\nFirst lines of %s:" % top_file)
    for line in files[top_file].splitlines()[:12]:
        print("   ", line)

    # -- 3. simulate the OFDM transmitter on the same spec -----------------
    machine = build_machine(spec)
    result = run_ofdm(machine, "FPA", OfdmParameters(packets=4))
    print("\nOFDM transmitter, FPA style, %d packets:" % result.packets)
    print("  throughput: %.4f Mbps over %d bus cycles (%.2f ms at 100 MHz)"
          % (result.throughput_mbps, result.cycles, result.seconds * 1e3))
    print("  (paper's Table II case 3: 4.5599 Mbps on their MPC755 testbed)")


if __name__ == "__main__":
    main()
