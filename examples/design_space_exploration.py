#!/usr/bin/env python
"""Design space exploration: the paper's core value proposition.

"This methodology gives the designer a great benefit in fast design space
exploration of bus architectures across a variety of performance impacting
factors such as bus types, processor types and software programming
style."  This example sweeps all of those for the OFDM transmitter:
every bus architecture x programming style combination is generated
(gate cost) and simulated (throughput), and the Pareto view is printed.
"""

from repro import BusSyn, build_machine, presets
from repro.apps.ofdm import OfdmParameters, run_ofdm

CASES = [
    ("BFBA", "PPA"),
    ("GBAVI", "PPA"),
    ("GBAVIII", "PPA"),
    ("GBAVIII", "FPA"),
    ("HYBRID", "PPA"),
    ("HYBRID", "FPA"),
    ("SPLITBA", "FPA"),
    ("GGBA", "PPA"),
    ("GGBA", "FPA"),
]


def main() -> None:
    tool = BusSyn()
    params = OfdmParameters(packets=4)
    rows = []
    for bus_name, style in CASES:
        spec = presets.preset(bus_name, pe_count=4)
        generated = tool.generate(spec)
        machine = build_machine(spec)
        result = run_ofdm(machine, style, params)
        rows.append(
            (
                bus_name,
                style,
                result.throughput_mbps,
                generated.report.gate_count,
                generated.report.generation_time_ms,
            )
        )

    print("%-8s %-5s %12s %12s %12s" % ("bus", "style", "Mbps", "bus gates", "gen [ms]"))
    for bus_name, style, mbps, gates, gen_ms in sorted(rows, key=lambda r: -r[2]):
        print("%-8s %-5s %12.4f %12d %12.1f" % (bus_name, style, mbps, gates, gen_ms))

    # Pareto frontier on (throughput up, gates down).
    pareto = []
    for row in sorted(rows, key=lambda r: -r[2]):
        if not pareto or row[3] < pareto[-1][3]:
            pareto.append(row)
    print("\nPareto-efficient configurations (throughput vs bus gates):")
    for bus_name, style, mbps, gates, _gen_ms in pareto:
        print("  %-8s %-5s  %.4f Mbps at %d gates" % (bus_name, style, mbps, gates))
    total_ms = sum(r[4] for r in rows)
    print("\nTotal generation time for %d bus systems: %.0f ms" % (len(rows), total_ms))
    print("(The paper: 'designed in a matter of seconds instead of weeks'.)")


if __name__ == "__main__":
    main()
