#!/usr/bin/env python
"""Design space exploration: the paper's core value proposition.

"This methodology gives the designer a great benefit in fast design space
exploration of bus architectures across a variety of performance impacting
factors such as bus types, processor types and software programming
style."  This example drives the production DSE engine (repro.dse,
docs/dse.md) over the same nine (bus, style) cases the original sweep
used: the spec expands into a deduplicated queue, each config is
generated (gate cost) and simulated (throughput), and the Pareto view is
printed.  Point ``repro dse --spec`` at a JSON file with more axes (PE
count, bus widths, arbiter policy, subsystem count, workload) for the
full-scale version of this loop, with an on-disk artifact cache and
parallel shards.
"""

from repro.dse.engine import run_sweep
from repro.dse.pareto import format_frontier_lines
from repro.dse.spec import example_spec


def main() -> None:
    # No cache directory: the example is self-contained and side-effect
    # free (the CLI's .repro/dse store is the production path).
    summary = run_sweep(example_spec(), jobs=1, cache_dir=None)
    rows = [
        (
            row["options"]["bus"],
            row["options"]["style"],
            row["throughput"],
            row["gate_count"],
            row["generation_time_ms"],
        )
        for row in summary["results"]
    ]

    print("%-8s %-5s %12s %12s %12s" % ("bus", "style", "Mbps", "bus gates", "gen [ms]"))
    for bus_name, style, mbps, gates, gen_ms in sorted(
        rows, key=lambda r: (-r[2], r[0], r[1])
    ):
        print("%-8s %-5s %12.4f %12d %12.1f" % (bus_name, style, mbps, gates, gen_ms))

    # Pareto frontier on (throughput up, gates down) -- the engine's
    # general dominance frontier, printed in the example's classic shape.
    print()
    for line in format_frontier_lines(summary["frontier"]):
        print(line)
    total_ms = sum(r[4] for r in rows)
    print("\nTotal generation time for %d bus systems: %.0f ms" % (len(rows), total_ms))
    print("(The paper: 'designed in a matter of seconds instead of weeks'.)")


if __name__ == "__main__":
    main()
