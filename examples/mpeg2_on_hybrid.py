#!/usr/bin/env python
"""MPEG2 decoding on the Hybrid bus (the paper's Table III winner).

Encodes a synthetic 16-frame video with the bundled MPEG2-profile codec,
decodes it functionally parallel on the Hybrid bus system (Bi-FIFOs for
adjacent-BAN frame handover, global memory for distribution -- Figure 6),
verifies every decoded frame against a serial reference decode, and
compares the throughput against GBAVIII and the CoreConnect-style CCBA
baseline.
"""

import numpy as np

from repro import build_machine, presets
from repro.apps.mpeg2 import (
    decode_sequence,
    encode_sequence,
    psnr,
    run_mpeg2,
    synthetic_video,
)


def main() -> None:
    video = synthetic_video(16)
    stream = encode_sequence(video)
    print("input: %d frames -> %d byte MPEG2 stream (%d GOPs)" % (
        len(video), len(stream), len(stream and video) // 2))

    # Reference serial decode for verification.
    reference_gops, stats = decode_sequence(stream)
    reference = {
        (gop.index, i): frame
        for gop in reference_gops
        for i, frame in enumerate(gop.frames)
    }
    quality = min(
        psnr(original.y, decoded.y)
        for original, decoded in zip(video, [f for g in reference_gops for f in g.frames])
    )
    print("codec quality: >= %.1f dB PSNR; %d coefficients decoded" % (
        quality, stats.coefficients))

    for bus_name in ("HYBRID", "GBAVIII", "CCBA"):
        machine = build_machine(presets.preset(bus_name, 4))
        result = run_mpeg2(machine, video)
        exact = all(
            np.allclose(result.frames[key].y, reference[key].y, atol=0.51)
            for key in reference
        )
        print("%-8s %.4f Mbps  (%.2f ms)  frames %s  GOP map: %s" % (
            bus_name,
            result.throughput_mbps,
            result.seconds * 1e3,
            "verified" if exact else "MISMATCH",
            "".join(result.gop_to_ban[i] for i in sorted(result.gop_to_ban)),
        ))
    print("\n(Paper: Hybrid 1.1650 > GBAVIII 1.1444 > CCBA 1.0083 Mbps; "
          "Hybrid beats CoreConnect by 15.54%.)")


if __name__ == "__main__":
    main()
