#!/usr/bin/env python
"""Building a custom Bus System from raw user options (Example 10 style).

Instead of a preset, this example assembles the spec by hand -- the way a
user walks Figure 18's input list -- for a heterogeneous two-subsystem
system: a BFBA pipeline of three MPC755s feeding a GBAVIII island with one
ARM9TDMI and a global memory, bridged together.  It then generates the
Verilog, writes the files to ./generated_custom/, and prints the module
hierarchy.
"""

import os

from repro import BANSpec, BusSpec, BusSubsystemSpec, BusSystemSpec, BusSyn, MemorySpec
from repro.hdl import elaborate


def build_spec() -> BusSystemSpec:
    # Subsystem 1: three-PE Bi-FIFO pipeline (user options 2.x, 3.x).
    pipeline = BusSubsystemSpec(
        name="PIPE",
        bans=[
            BANSpec(
                name=letter,
                cpu_type="MPC755",
                memories=[MemorySpec("SRAM", address_width=18, data_width=64)],
            )
            for letter in ("A", "B", "C")
        ],
        buses=[BusSpec("BFBA", address_width=32, data_width=64, fifo_depth=512)],
    )
    for ban in pipeline.bans:
        ban.memories[0].name = "SRAM_%s" % ban.name

    # Subsystem 2: an ARM island on a global bus with shared memory.
    island = BusSubsystemSpec(
        name="ISLAND",
        bans=[
            BANSpec(
                name="D",
                cpu_type="ARM9TDMI",
                memories=[MemorySpec("SRAM", address_width=18, data_width=64, name="SRAM_D")],
            ),
            BANSpec(
                name="G1",
                cpu_type="NONE",
                memories=[MemorySpec("SRAM", address_width=20, data_width=64, name="GLOBAL_SRAM_G1")],
                is_global_resource=True,
            ),
        ],
        buses=[BusSpec("GBAVIII")],
    )

    spec = BusSystemSpec(name="CUSTOM", subsystems=[pipeline, island])
    spec.validate()
    return spec


def main() -> None:
    spec = build_spec()
    generated = BusSyn().generate(spec)
    print(generated.report.row())
    print("lint:", "clean" if not generated.lint_errors() else generated.lint_errors())

    out_dir = os.path.join(os.path.dirname(__file__), "generated_custom")
    os.makedirs(out_dir, exist_ok=True)
    for file_name, text in generated.files().items():
        with open(os.path.join(out_dir, file_name), "w") as handle:
            handle.write(text)
    print("wrote %d Verilog files to %s" % (len(generated.files()), out_dir))

    print("\nModule hierarchy (instance counts):")
    for name, count in sorted(elaborate(generated.design()).items()):
        print("  %3dx %s" % (count, name))


if __name__ == "__main__":
    main()
