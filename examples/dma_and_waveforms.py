#!/usr/bin/env python
"""Extensions in action: the DMA engine and VCD waveform export.

Section IV.C.3 notes a DMA device "can be supported in GBAVIII" for the raw
data distribution the paper does with a PE; this example measures the
offload win, then records the GBAVI handshake of Figure 11 as a standard
VCD file you can open in GTKWave.
"""

import os

from repro import build_machine, presets
from repro.sim import DmaEngine, vcd_from_machine
from repro.soc.api import SocAPI
from repro.soc.handshake import GbaviChannel


def dma_demo() -> None:
    print("DMA offload (GBAVIII, 4096-word distribution copy + compute):")
    for use_dma in (False, True):
        machine = build_machine(presets.preset("GBAVIII", 4))
        api = SocAPI(machine, "A")
        machine.memory("GLOBAL_SRAM_G").write(0, list(range(4096)))

        def program():
            if use_dma:
                dma = DmaEngine(machine)
                done = dma.copy(("GLOBAL_SRAM_G", 0), ("GLOBAL_SRAM_G", 8192), 4096)
                yield from api.compute(40_000)   # useful work, overlapped
                yield done
            else:
                values = yield from api.read(("GLOBAL_SRAM_G", 0), 4096)
                yield from api.mem_write(values, ("GLOBAL_SRAM_G", 8192))
                yield from api.compute(40_000)

        machine.pe("A").run(program())
        machine.sim.run()
        assert machine.memory("GLOBAL_SRAM_G").read(8192, 4) == [0, 1, 2, 3]
        print("  %-28s %6d cycles" % (
            "DMA + overlapped compute:" if use_dma else "PE-driven copy + compute:",
            machine.sim.now,
        ))


def waveform_demo() -> None:
    machine = build_machine(presets.preset("GBAVI", 4), trace_hsregs=True)
    for segment in machine.segments.values():
        segment.arbiter.trace_enabled = True
    channel = GbaviChannel(SocAPI(machine, "A"), SocAPI(machine, "B"), 64)

    def sender():
        yield from channel.send(list(range(64)))

    def receiver():
        yield from channel.recv()

    machine.pe("A").run(sender())
    machine.pe("B").run(receiver())
    machine.sim.run()

    path = os.path.join(os.path.dirname(__file__), "figure11_handshake.vcd")
    with open(path, "w") as handle:
        handle.write(vcd_from_machine(machine))
    print("\nFigure 11's handshake recorded to %s" % path)
    print("protocol steps observed:")
    for label, cycle in channel.trace:
        print("  cycle %5d  %s" % (cycle, label))


if __name__ == "__main__":
    dma_demo()
    waveform_demo()
