#!/usr/bin/env python
"""The database example: why a split bus wins (Table IV's 41 %).

Runs the 41-task server/client workload on the RTOS over GGBA (one global
bus, everything shared) and SplitBA (two bridged subsystems, each with its
own arbiter and shared SRAM), then prints the per-bus utilization that
explains the gap: GGBA's single bus saturates under forty clients'
transactions, while SplitBA's two buses each carry half the load at one
cycle per beat.
"""

from repro import build_machine, presets
from repro.apps.database import run_database


def main() -> None:
    results = {}
    for bus_name in ("GGBA", "SPLITBA"):
        machine = build_machine(presets.preset(bus_name, 4))
        result = run_database(machine)
        results[bus_name] = result
        print("%s: %.0f ns (%d tasks, %d lock acquisitions, %d contended)" % (
            bus_name,
            result.execution_time_ns,
            result.tasks_completed,
            result.lock_acquisitions,
            result.lock_contentions,
        ))
        for segment in machine.segments.values():
            stats = segment.stats
            print("   bus %-18s util %5.1f%%  %5d transactions  "
                  "mean arbitration wait %5.1f cycles  %d cycles/beat" % (
                      segment.name,
                      100 * stats.utilization(result.cycles),
                      stats.transactions,
                      stats.mean_arbitration_wait(),
                      segment.beat_cycles,
                  ))
    reduction = 1 - results["SPLITBA"].execution_time_ns / results["GGBA"].execution_time_ns
    print("\nSplitBA reduces execution time by %.1f%% (paper: 41%%: "
          "2,241,100 ns -> 1,317,804 ns)" % (reduction * 100))


if __name__ == "__main__":
    main()
